#include "format/container.hpp"

#include <cstring>

#include "core/metadata_codec.hpp"
#include "format/wire_io.hpp"
#include "util/error.hpp"

namespace recoil::format {

using namespace wire;

namespace {

constexpr char kMagic[4] = {'R', 'C', 'F', '1'};

}  // namespace

u64 fnv1a(std::span<const u8> bytes, u64 state) {
    for (u8 b : bytes) {
        state ^= b;
        state *= 0x100000001b3ull;
    }
    return state;
}

u64 fnv1a(std::span<const u8> bytes) { return fnv1a(bytes, kFnvInit); }

StaticModel RecoilFile::build_static_model() const {
    const auto& p = std::get<StaticPayload>(model);
    return StaticModel(std::span<const u32>(p.freq), prob_bits, 0);
}

IndexedModelSet RecoilFile::build_indexed_model() const {
    const auto& p = std::get<IndexedPayload>(model);
    std::vector<StaticModel> models;
    models.reserve(p.freqs.size());
    for (const auto& f : p.freqs)
        models.emplace_back(std::span<const u32>(f), prob_bits, 0);
    return IndexedModelSet(std::move(models),
                           std::vector<u8>(p.ids.begin(), p.ids.end()));
}

std::vector<u8> save_recoil_file(const RecoilFile& f) {
    return save_recoil_file(f, f.metadata);
}

std::vector<u8> save_recoil_file(const RecoilFile& f,
                                 const RecoilMetadata& metadata) {
    VectorSink sink;
    save_recoil_file_into(f, metadata, sink);
    return std::move(sink.out);
}

void save_recoil_file_into(const RecoilFile& f, const RecoilMetadata& metadata,
                           WireSink& sink) {
    HashingSink hs(sink);
    std::vector<u8> head;
    head.insert(head.end(), kMagic, kMagic + 4);
    head.push_back(2);  // version (2: unit payload aligned via pad marker)
    head.push_back(f.sym_width);
    head.push_back(f.is_indexed() ? 1 : 0);
    head.push_back(static_cast<u8>(f.prob_bits));

    if (f.is_indexed()) {
        const auto& p = std::get<RecoilFile::IndexedPayload>(f.model);
        put_u32(head, static_cast<u32>(p.freqs.size()));
        for (const auto& freq : p.freqs) put_freq_table(head, freq);
        put_u64(head, p.ids.size());
        hs.write(std::move(head));
        hs.write(p.ids);  // shared view of the id stream, never a copy
    } else {
        const auto& p = std::get<RecoilFile::StaticPayload>(f.model);
        put_freq_table(head, p.freq);
        hs.write(std::move(head));
    }

    std::vector<u8> mid;
    const std::vector<u8> meta = serialize_metadata(metadata);
    put_u64(mid, meta.size());
    mid.insert(mid.end(), meta.begin(), meta.end());
    put_u64(mid, f.units.size());
    put_unit_pad(mid, hs.bytes());
    hs.write(std::move(mid));
    hs.write(unit_wire_bytes(f.units, 0, f.units.size()));

    std::vector<u8> trailer;
    put_u64(trailer, hs.digest());
    sink.write(std::move(trailer));  // the checksum covers everything above
}

namespace {

/// Shared parse: owning (keeper null: units/ids copied out of `bytes`) or
/// view mode (keeper owns `bytes`: units/ids borrow the mapped storage).
RecoilFile load_recoil_file_impl(std::span<const u8> bytes,
                                 const std::shared_ptr<const void>& keeper,
                                 bool checksum_verified) {
    Cursor c{checked_payload(bytes, "container", !checksum_verified),
             "container"};
    if (std::memcmp(c.get_bytes(4).data(), kMagic, 4) != 0)
        raise("container: bad magic");
    const u8 version = c.get_u8();
    if (version != 1 && version != 2) raise("container: unsupported version");

    RecoilFile f;
    f.sym_width = c.get_u8();
    if (f.sym_width != 1 && f.sym_width != 2) raise("container: bad symbol width");
    const bool indexed = c.get_u8() != 0;
    f.prob_bits = c.get_u8();
    if (f.prob_bits < 1 || f.prob_bits > 16) raise("container: bad prob_bits");

    if (indexed) {
        RecoilFile::IndexedPayload p;
        const u32 k = c.get_u32();
        if (k == 0 || k > 256) raise("container: bad model count");
        p.freqs.resize(k);
        for (auto& freq : p.freqs) freq = get_freq_table(c, f.prob_bits);
        const u64 ids_len = c.get_u64();
        auto ids = c.get_bytes(ids_len);
        if (keeper != nullptr)
            p.ids = ByteBuffer::view(ids, keeper);
        else
            p.ids = std::vector<u8>(ids.begin(), ids.end());
        f.model = std::move(p);
    } else {
        f.model = RecoilFile::StaticPayload{get_freq_table(c, f.prob_bits)};
    }

    const u64 meta_len = c.get_u64();
    f.metadata = deserialize_metadata(c.get_bytes(meta_len));

    const u64 unit_count = c.get_u64();
    if (version >= 2) skip_unit_pad(c);
    f.units = get_unit_buffer(c, unit_count, keeper);
    if (f.metadata.num_units != unit_count)
        raise("container: metadata/bitstream length mismatch");
    return f;
}

}  // namespace

RecoilFile load_recoil_file(std::span<const u8> bytes) {
    return load_recoil_file_impl(bytes, nullptr, false);
}

RecoilFile load_recoil_file_view(std::span<const u8> bytes,
                                 std::shared_ptr<const void> keeper,
                                 bool checksum_verified) {
    return load_recoil_file_impl(bytes, keeper, checksum_verified);
}

u64 serialized_file_size(const RecoilFile& f) {
    u64 n = 4 + 4;  // magic; version/sym_width/indexed/prob_bits
    if (f.is_indexed()) {
        const auto& p = std::get<RecoilFile::IndexedPayload>(f.model);
        n += 4;
        for (const auto& freq : p.freqs) n += 4 + 4 * freq.size();
        n += 8 + p.ids.size();
    } else {
        n += 4 + 4 * std::get<RecoilFile::StaticPayload>(f.model).freq.size();
    }
    n += 8 + serialize_metadata(f.metadata).size();
    n += 8;  // unit count
    n += wire::unit_pad_size(n);
    n += f.units.size() * 2;
    return n + 8;  // checksum
}

std::vector<u8> serve_combined(const RecoilFile& f, u32 target_splits) {
    return save_recoil_file(f, combine_splits(f.metadata, target_splits));
}

template <typename Model>
RecoilFile make_recoil_file(const RecoilEncoded<Rans32, 32>& enc, const Model& model,
                            u8 sym_width) {
    static_assert(std::is_same_v<Model, StaticModel>,
                  "indexed models carry external pdfs; assemble RecoilFile "
                  "with IndexedPayload manually");
    RecoilFile f;
    f.sym_width = sym_width;
    f.prob_bits = model.prob_bits();
    f.metadata = enc.metadata;
    f.units = enc.bitstream.units;
    RecoilFile::StaticPayload p;
    p.freq.resize(model.alphabet());
    for (u32 s = 0; s < model.alphabet(); ++s) p.freq[s] = model.freq(s);
    f.model = std::move(p);
    return f;
}

template RecoilFile make_recoil_file<StaticModel>(const RecoilEncoded<Rans32, 32>&,
                                                  const StaticModel&, u8);

namespace {
constexpr char kConvMagic[4] = {'C', 'N', 'V', '1'};
}

std::vector<u8> save_conventional_file(const ConventionalFile& f) {
    std::vector<u8> out;
    out.insert(out.end(), kConvMagic, kConvMagic + 4);
    out.push_back(1);  // version
    out.push_back(f.sym_width);
    out.push_back(static_cast<u8>(f.prob_bits));
    out.push_back(0);
    put_freq_table(out, f.freq);
    put_u64(out, f.payload.num_symbols);
    put_u64(out, f.payload.partitions.size());
    for (const auto& p : f.payload.partitions) {
        put_u64(out, p.sym_begin);
        put_u64(out, p.sym_count);
        put_u64(out, p.unit_begin);
        put_u64(out, p.unit_count);
        for (u32 s : p.final_states) put_u32(out, s);
    }
    put_u64(out, f.payload.units.size());
    const auto* ub = reinterpret_cast<const u8*>(f.payload.units.data());
    out.insert(out.end(), ub, ub + f.payload.units.size() * 2);
    append_checksum(out);
    return out;
}

ConventionalFile load_conventional_file(std::span<const u8> bytes) {
    Cursor c{checked_payload(bytes, "conventional container"),
             "conventional container"};
    if (std::memcmp(c.get_bytes(4).data(), kConvMagic, 4) != 0)
        raise("conventional container: bad magic");
    if (c.get_u8() != 1) raise("conventional container: unsupported version");
    ConventionalFile f;
    f.sym_width = c.get_u8();
    if (f.sym_width != 1 && f.sym_width != 2)
        raise("conventional container: bad symbol width");
    f.prob_bits = c.get_u8();
    if (f.prob_bits < 1 || f.prob_bits > 16)
        raise("conventional container: bad prob_bits");
    (void)c.get_u8();
    f.freq = get_freq_table(c, f.prob_bits);
    f.payload.num_symbols = c.get_u64();
    const u64 parts = c.get_u64();
    if (parts == 0 || parts > (u64{1} << 24))
        raise("conventional container: bad partition count");
    f.payload.partitions.resize(parts);
    u64 covered = 0;
    u64 units_covered = 0;
    for (auto& p : f.payload.partitions) {
        p.sym_begin = c.get_u64();
        p.sym_count = c.get_u64();
        p.unit_begin = c.get_u64();
        p.unit_count = c.get_u64();
        if (p.sym_begin != covered || p.unit_begin != units_covered)
            raise("conventional container: partitions not contiguous");
        covered += p.sym_count;
        units_covered += p.unit_count;
        for (auto& s : p.final_states) s = c.get_u32();
    }
    if (covered != f.payload.num_symbols)
        raise("conventional container: partitions do not cover the stream");
    const u64 unit_count = c.get_u64();
    if (unit_count != units_covered)
        raise("conventional container: unit count mismatch");
    auto units = c.get_unit_bytes(unit_count);
    f.payload.units.resize(unit_count);
    std::memcpy(f.payload.units.data(), units.data(), unit_count * 2);
    return f;
}

}  // namespace recoil::format
