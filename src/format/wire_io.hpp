#pragma once
// Little-endian wire primitives shared by every serializer/parser in the
// library (container, chunked stream, range wire). Parsers consume untrusted
// bytes: Cursor::need compares against the remaining length so an
// attacker-controlled u64 size cannot wrap `pos + n` past the bounds check,
// and freq tables are validated to sum to exactly 2^prob_bits before they
// can reach a model's table builder.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/ints.hpp"

namespace recoil::format {

/// FNV-1a 64-bit, used as the container integrity checksum (container.cpp).
u64 fnv1a(std::span<const u8> bytes);

/// FNV-1a offset basis: the initial state of an incremental hash.
inline constexpr u64 kFnvInit = 0xcbf29ce484222325ull;

/// Incremental FNV-1a: fold `bytes` into `state` (seed with kFnvInit).
/// Hashing a buffer piece by piece yields the same digest as one pass, which
/// is what lets a streaming wire producer emit its trailing checksum without
/// ever holding the whole wire.
u64 fnv1a(std::span<const u8> bytes, u64 state);

/// Payload storage that is either owned or a zero-copy view into bytes kept
/// alive by an external keeper (an mmapped container file). Copies share the
/// underlying storage, so re-serializing or combining a parsed container
/// never duplicates the bitstream. The keeper outlives every view, which is
/// what makes handing spans of a mapping around safe.
template <typename T>
class SharedBuffer {
public:
    SharedBuffer() = default;
    SharedBuffer(std::vector<T> own) {  // NOLINT: implicit by design
        auto v = std::make_shared<const std::vector<T>>(std::move(own));
        view_ = std::span<const T>(v->data(), v->size());
        keeper_ = std::move(v);
    }
    SharedBuffer& operator=(std::vector<T> own) {
        *this = SharedBuffer(std::move(own));
        return *this;
    }

    /// View over caller-kept bytes; `keeper` must own the storage `s` points
    /// into and is retained for the buffer's lifetime.
    static SharedBuffer view(std::span<const T> s,
                             std::shared_ptr<const void> keeper) {
        SharedBuffer b;
        b.view_ = s;
        b.keeper_ = std::move(keeper);
        b.borrowed_ = true;
        return b;
    }

    const T* data() const noexcept { return view_.data(); }
    std::size_t size() const noexcept { return view_.size(); }
    bool empty() const noexcept { return view_.empty(); }
    const T* begin() const noexcept { return view_.data(); }
    const T* end() const noexcept { return view_.data() + view_.size(); }
    const T& operator[](std::size_t i) const noexcept { return view_[i]; }
    operator std::span<const T>() const noexcept { return view_; }  // NOLINT

    /// True when this buffer is a zero-copy view into external storage
    /// (e.g. an mmapped file) rather than an owned vector.
    bool borrowed() const noexcept { return borrowed_; }

    /// The storage owner this buffer retains (shared vector or mapped file).
    std::shared_ptr<const void> keeper() const noexcept { return keeper_; }

    /// Sub-range view sharing this buffer's storage and keeper — never a
    /// copy, so slicing a payload for piecewise emission is free.
    SharedBuffer slice(std::size_t pos, std::size_t n) const {
        SharedBuffer b;
        b.view_ = view_.subspan(pos, n);
        b.keeper_ = keeper_;
        b.borrowed_ = borrowed_;
        return b;
    }

    friend bool operator==(const SharedBuffer& a, const SharedBuffer& b) {
        return std::equal(a.begin(), a.end(), b.begin(), b.end());
    }

private:
    std::span<const T> view_;
    std::shared_ptr<const void> keeper_;
    bool borrowed_ = false;
};

using UnitBuffer = SharedBuffer<u16>;  ///< bitstream units
using ByteBuffer = SharedBuffer<u8>;   ///< per-symbol model ids

/// Push consumer of a wire under construction, fed pieces in wire order.
/// Pieces are ByteBuffers, so producers hand out borrowed views of payload
/// storage (mmapped bitstreams, shared id streams) without copying; only the
/// small structural sections are owned allocations. Every serializer in the
/// library produces through this interface — materializing a whole wire is
/// just the VectorSink instance of it.
class WireSink {
public:
    virtual ~WireSink() = default;
    virtual void write(ByteBuffer piece) = 0;
};

/// Materializing sink: concatenates every piece (the legacy wire shape).
class VectorSink final : public WireSink {
public:
    void write(ByteBuffer piece) override {
        out.insert(out.end(), piece.begin(), piece.end());
    }
    std::vector<u8> out;
};

/// Pass-through sink folding every byte into a running FNV-1a, so a
/// producer can emit its trailing checksum without a second pass over (or a
/// materialized copy of) the wire. `bytes()` doubles as the absolute wire
/// offset, which alignment pads depend on.
class HashingSink final : public WireSink {
public:
    explicit HashingSink(WireSink& down) : down_(down) {}
    void write(ByteBuffer piece) override {
        digest_ = fnv1a(piece, digest_);
        bytes_ += piece.size();
        down_.write(std::move(piece));
    }
    u64 digest() const noexcept { return digest_; }
    u64 bytes() const noexcept { return bytes_; }

private:
    WireSink& down_;
    u64 digest_ = kFnvInit;
    u64 bytes_ = 0;
};

/// The wire form of `count` units starting at `first`: a borrowed byte view
/// of the unit storage (little-endian u16s are their own wire encoding —
/// the same reinterpretation every materializing serializer already does).
inline ByteBuffer unit_wire_bytes(const UnitBuffer& units, u64 first,
                                  u64 count) {
    return ByteBuffer::view(
        std::span<const u8>(
            reinterpret_cast<const u8*>(units.data() + first), count * 2),
        units.keeper());
}

namespace wire {

inline void put_u16(std::vector<u8>& out, u16 v) {
    for (int i = 0; i < 2; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}
inline void put_u32(std::vector<u8>& out, u32 v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}
inline void put_u64(std::vector<u8>& out, u64 v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

struct Cursor {
    std::span<const u8> in;
    const char* ctx = "wire";  ///< error-message prefix
    std::size_t pos = 0;

    void need(std::size_t n) const {
        // pos <= in.size() is an invariant, so comparing against the
        // remainder cannot overflow no matter how large n is.
        if (n > in.size() - pos) raise(std::string(ctx) + ": truncated");
    }
    u8 get_u8() {
        need(1);
        return in[pos++];
    }
    u16 get_u16() {
        need(2);
        u16 v = 0;
        for (int i = 0; i < 2; ++i) v = static_cast<u16>(v | (u16{in[pos + i]} << (8 * i)));
        pos += 2;
        return v;
    }
    u32 get_u32() {
        need(4);
        u32 v = 0;
        for (int i = 0; i < 4; ++i) v |= u32{in[pos + i]} << (8 * i);
        pos += 4;
        return v;
    }
    u64 get_u64() {
        need(8);
        u64 v = 0;
        for (int i = 0; i < 8; ++i) v |= u64{in[pos + i]} << (8 * i);
        pos += 8;
        return v;
    }
    std::span<const u8> get_bytes(std::size_t n) {
        need(n);
        auto s = in.subspan(pos, n);
        pos += n;
        return s;
    }
    /// Bytes of `count` 16-bit units; guards the count*2 multiply against
    /// wrapping before the bounds check.
    std::span<const u8> get_unit_bytes(u64 count) {
        if (count > (in.size() - pos) / 2)
            raise(std::string(ctx) + ": truncated");
        return get_bytes(static_cast<std::size_t>(count) * 2);
    }
};

inline void append_checksum(std::vector<u8>& out) { put_u64(out, fnv1a(out)); }

/// Verify the trailing checksum and return the payload it covers. `verify`
/// false skips the hash (for callers that already validated the same bytes
/// at a higher level, e.g. a store manifest checksum over a mapped file) but
/// still strips the trailer.
inline std::span<const u8> checked_payload(std::span<const u8> bytes,
                                           const char* ctx, bool verify = true) {
    if (bytes.size() < 16) raise(std::string(ctx) + ": too short");
    u64 stored = 0;
    for (int i = 0; i < 8; ++i)
        stored |= u64{bytes[bytes.size() - 8 + i]} << (8 * i);
    auto payload = bytes.first(bytes.size() - 8);
    if (verify && fnv1a(payload) != stored)
        raise(std::string(ctx) + ": checksum mismatch");
    return payload;
}

/// Pad marker so the u16 unit payload that follows starts at an even offset
/// within the serialized buffer: a one-byte pad count (0 or 1) followed by
/// that many zero bytes. With the container file mapped at a page-aligned
/// base, an even file offset makes the units directly addressable as u16
/// without copying (see SharedBuffer::view).
inline void put_unit_pad(std::vector<u8>& out, u64 base = 0) {
    const u8 pad = static_cast<u8>((base + out.size() + 1) % 2);
    out.push_back(pad);
    if (pad != 0) out.push_back(0);
}

/// Bytes put_unit_pad would append at buffer offset `pos`.
inline u64 unit_pad_size(u64 pos) { return 1 + (pos + 1) % 2; }

/// Consume a pad marker written by put_unit_pad.
inline void skip_unit_pad(Cursor& c) {
    const u8 pad = c.get_u8();
    if (pad > 1) raise(std::string(c.ctx) + ": bad unit padding");
    for (u8 i = 0; i < pad; ++i)
        if (c.get_u8() != 0) raise(std::string(c.ctx) + ": bad unit padding");
}

/// Consume `count` u16 units as a UnitBuffer: a zero-copy view into the
/// cursor's bytes when a keeper owns them and the payload is u16-aligned
/// (v2 containers mapped at offset 0 guarantee this), an owned copy
/// otherwise. Shared by every container parser.
inline UnitBuffer get_unit_buffer(Cursor& c, u64 count,
                                  const std::shared_ptr<const void>& keeper) {
    auto units = c.get_unit_bytes(count);
    if (keeper != nullptr &&
        reinterpret_cast<std::uintptr_t>(units.data()) % alignof(u16) == 0) {
        return UnitBuffer::view(
            std::span<const u16>(reinterpret_cast<const u16*>(units.data()),
                                 count),
            keeper);
    }
    std::vector<u16> copy(count);
    std::memcpy(copy.data(), units.data(), count * 2);
    return copy;
}

inline void put_freq_table(std::vector<u8>& out, std::span<const u32> freq) {
    put_u32(out, static_cast<u32>(freq.size()));
    for (u32 f : freq) put_u32(out, f);
}

/// Parse a freq table and require it to be a valid quantized pdf for
/// `prob_bits` (entries summing to exactly 2^prob_bits), so hostile values
/// cannot overflow the decode-side cumulative tables.
inline std::vector<u32> get_freq_table(Cursor& c, u32 prob_bits) {
    const u32 n = c.get_u32();
    if (n == 0 || n > (u32{1} << 20))
        raise(std::string(c.ctx) + ": bad alphabet size");
    std::vector<u32> freq(n);
    u64 total = 0;
    for (auto& f : freq) {
        f = c.get_u32();
        total += f;
    }
    if (total != u64{1} << prob_bits)
        raise(std::string(c.ctx) + ": frequency table does not sum to 2^prob_bits");
    return freq;
}

}  // namespace wire
}  // namespace recoil::format
