#pragma once
// Little-endian wire primitives shared by every serializer/parser in the
// library (container, chunked stream, range wire). Parsers consume untrusted
// bytes: Cursor::need compares against the remaining length so an
// attacker-controlled u64 size cannot wrap `pos + n` past the bounds check,
// and freq tables are validated to sum to exactly 2^prob_bits before they
// can reach a model's table builder.

#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/ints.hpp"

namespace recoil::format {

/// FNV-1a 64-bit, used as the container integrity checksum (container.cpp).
u64 fnv1a(std::span<const u8> bytes);

namespace wire {

inline void put_u16(std::vector<u8>& out, u16 v) {
    for (int i = 0; i < 2; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}
inline void put_u32(std::vector<u8>& out, u32 v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}
inline void put_u64(std::vector<u8>& out, u64 v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

struct Cursor {
    std::span<const u8> in;
    const char* ctx = "wire";  ///< error-message prefix
    std::size_t pos = 0;

    void need(std::size_t n) const {
        // pos <= in.size() is an invariant, so comparing against the
        // remainder cannot overflow no matter how large n is.
        if (n > in.size() - pos) raise(std::string(ctx) + ": truncated");
    }
    u8 get_u8() {
        need(1);
        return in[pos++];
    }
    u16 get_u16() {
        need(2);
        u16 v = 0;
        for (int i = 0; i < 2; ++i) v = static_cast<u16>(v | (u16{in[pos + i]} << (8 * i)));
        pos += 2;
        return v;
    }
    u32 get_u32() {
        need(4);
        u32 v = 0;
        for (int i = 0; i < 4; ++i) v |= u32{in[pos + i]} << (8 * i);
        pos += 4;
        return v;
    }
    u64 get_u64() {
        need(8);
        u64 v = 0;
        for (int i = 0; i < 8; ++i) v |= u64{in[pos + i]} << (8 * i);
        pos += 8;
        return v;
    }
    std::span<const u8> get_bytes(std::size_t n) {
        need(n);
        auto s = in.subspan(pos, n);
        pos += n;
        return s;
    }
    /// Bytes of `count` 16-bit units; guards the count*2 multiply against
    /// wrapping before the bounds check.
    std::span<const u8> get_unit_bytes(u64 count) {
        if (count > (in.size() - pos) / 2)
            raise(std::string(ctx) + ": truncated");
        return get_bytes(static_cast<std::size_t>(count) * 2);
    }
};

inline void append_checksum(std::vector<u8>& out) { put_u64(out, fnv1a(out)); }

/// Verify the trailing checksum and return the payload it covers.
inline std::span<const u8> checked_payload(std::span<const u8> bytes,
                                           const char* ctx) {
    if (bytes.size() < 16) raise(std::string(ctx) + ": too short");
    u64 stored = 0;
    for (int i = 0; i < 8; ++i)
        stored |= u64{bytes[bytes.size() - 8 + i]} << (8 * i);
    auto payload = bytes.first(bytes.size() - 8);
    if (fnv1a(payload) != stored)
        raise(std::string(ctx) + ": checksum mismatch");
    return payload;
}

inline void put_freq_table(std::vector<u8>& out, std::span<const u32> freq) {
    put_u32(out, static_cast<u32>(freq.size()));
    for (u32 f : freq) put_u32(out, f);
}

/// Parse a freq table and require it to be a valid quantized pdf for
/// `prob_bits` (entries summing to exactly 2^prob_bits), so hostile values
/// cannot overflow the decode-side cumulative tables.
inline std::vector<u32> get_freq_table(Cursor& c, u32 prob_bits) {
    const u32 n = c.get_u32();
    if (n == 0 || n > (u32{1} << 20))
        raise(std::string(c.ctx) + ": bad alphabet size");
    std::vector<u32> freq(n);
    u64 total = 0;
    for (auto& f : freq) {
        f = c.get_u32();
        total += f;
    }
    if (total != u64{1} << prob_bits)
        raise(std::string(c.ctx) + ": frequency table does not sum to 2^prob_bits");
    return freq;
}

}  // namespace wire
}  // namespace recoil::format
