#pragma once
// Per-request tracing for the serve stack. A TraceContext rides one request
// through ContentServer::prepare -> cache lookup -> combine/stream
// production -> governor pass, recording a span (name, start offset,
// duration, nesting depth) per phase into a small inline array — no heap
// on the hot path, and an inactive context (telemetry disabled) costs two
// pointer writes total. Spans double as the histogram feed: a Scoped span
// given a Histogram* observes its own duration on close, so the per-phase
// latency distributions and the trace come from the same clock reads.
//
// The SlowRequestLog is the bounded retention policy over finished traces:
// it keeps the N slowest requests ever seen (min-replacement, with a
// lock-free threshold so the hot path can reject obviously-fast requests
// without taking the log's mutex) and, separately, the N most recent FAILED
// requests as structured events — typed code attached, so "what failed and
// where did the time go" is answerable from a running server, not a
// debugger. Governance failures are routed here too (op "governance"), with
// the StoreError/ProtocolError code that was previously swallowed.

#include <atomic>
#include <deque>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/ints.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_annotations.hpp"

namespace recoil::obs {

/// One finished phase of a traced request.
struct SpanRecord {
    const char* name = "";      ///< static string (phase name)
    double start_seconds = 0;   ///< offset from the trace's start
    double duration_seconds = 0;
    int depth = 0;              ///< nesting level (0 = request-level phase)
};

/// Process-wide request-id sequence (never 0 for an active trace).
u64 next_trace_id() noexcept;

/// Trace of one request. Create active (op + asset) or default-inactive;
/// inactive contexts make every call a no-op so call sites need no
/// branching. Movable (a stream's context moves into its StreamState);
/// moving with an open Scoped span is undefined — open spans are
/// function-scoped by construction.
class TraceContext {
public:
    static constexpr int kMaxSpans = 8;

    TraceContext() = default;  // inactive
    TraceContext(const char* op, std::string asset)
        : id_(next_trace_id()), op_(op), asset_(std::move(asset)) {}

    TraceContext(TraceContext&&) = default;
    TraceContext& operator=(TraceContext&&) = default;
    TraceContext(const TraceContext&) = delete;
    TraceContext& operator=(const TraceContext&) = delete;

    bool active() const noexcept { return id_ != 0; }
    u64 id() const noexcept { return id_; }
    const char* op() const noexcept { return op_; }
    const std::string& asset() const noexcept { return asset_; }
    double elapsed() const noexcept { return clock_.seconds(); }

    /// RAII phase marker: on an active trace, records the span when it goes
    /// out of scope and, when `h` is non-null, observes the duration into
    /// the histogram — the trace and the latency distribution come from the
    /// same clock reads (offsets on the trace's own clock; no second
    /// stopwatch). On an inactive trace (telemetry off, or this request not
    /// sampled) the span is a complete no-op: no clock read, no histogram
    /// sample — which is what makes request sampling actually free, and
    /// means the per-phase histograms describe exactly the sampled
    /// requests.
    class Scoped {
    public:
        Scoped(TraceContext* t, const char* name, Histogram* h) noexcept
            : name_(name) {
            if (t != nullptr && t->active()) {
                t_ = t;
                h_ = h;
                start_ = t->clock_.seconds();
                depth_ = t->depth_++;
            }
        }
        ~Scoped() {
            if (t_ == nullptr) return;
            const double dur = t_->clock_.seconds() - start_;
            if (h_ != nullptr) h_->observe(dur);
            --t_->depth_;
            if (t_->nspans_ < kMaxSpans)
                t_->spans_[t_->nspans_++] =
                    SpanRecord{name_, start_, dur, depth_};
        }
        Scoped(const Scoped&) = delete;
        Scoped& operator=(const Scoped&) = delete;

    private:
        TraceContext* t_ = nullptr;
        const char* name_ = "";
        Histogram* h_ = nullptr;
        double start_ = 0;
        int depth_ = 0;
    };

    Scoped span(const char* name, Histogram* h = nullptr) noexcept {
        return Scoped(this, name, h);
    }

    std::vector<SpanRecord> spans() const {
        return {spans_, spans_ + nspans_};
    }

private:
    friend class Scoped;
    u64 id_ = 0;
    const char* op_ = "";
    std::string asset_;
    Stopwatch clock_;
    SpanRecord spans_[kMaxSpans];
    int nspans_ = 0;
    int depth_ = 0;
};

/// One retained trace: a finished slow request, a failed request, or a
/// structured non-request failure event (governance).
struct TraceRecord {
    u64 id = 0;
    std::string op;         ///< "serve" | "stream" | "governance"
    std::string asset;
    bool failed = false;
    u16 code = 0;           ///< numeric ErrorCode (or StoreStatus) value
    std::string code_name;  ///< e.g. "unknown_asset", "store:bad_manifest"
    std::string detail;
    bool cache_hit = false;
    double total_seconds = 0;
    u64 wire_bytes = 0;
    std::vector<SpanRecord> spans;
    u64 sequence = 0;  ///< admission order within the log (newest = max)
};

/// Bounded ring of the N slowest and the N most recent failed requests.
class SlowRequestLog {
public:
    explicit SlowRequestLog(std::size_t slow_slots = 32,
                            std::size_t failed_slots = 32)
        : slow_slots_(slow_slots), failed_slots_(failed_slots) {}

    /// Lock-free pre-filter for the hot path: false means record() would
    /// certainly drop the event, so the caller can skip building the
    /// TraceRecord entirely. Failures are always interesting; successes
    /// only once they beat the slowest-set's current floor.
    bool interesting(double total_seconds, bool failed) const noexcept {
        if (failed && failed_slots_ != 0) return true;
        if (slow_slots_ == 0) return false;
        const u64 floor_ns = slow_floor_ns_.load(std::memory_order_relaxed);
        return total_seconds * 1e9 > static_cast<double>(floor_ns) ||
               floor_ns == 0;
    }

    void record(TraceRecord rec) RECOIL_EXCLUDES(mu_);

    /// The retained slowest requests, slowest first.
    std::vector<TraceRecord> slowest() const RECOIL_EXCLUDES(mu_);
    /// The retained failed requests, most recent first.
    std::vector<TraceRecord> recent_failures() const RECOIL_EXCLUDES(mu_);

    u64 recorded() const noexcept {
        return recorded_.load(std::memory_order_relaxed);
    }

    /// {"slowest": [...], "failures": [...]} with spans inline.
    std::string to_json() const RECOIL_EXCLUDES(mu_);

private:
    std::size_t slow_slots_;
    std::size_t failed_slots_;
    mutable util::Mutex mu_;
    std::vector<TraceRecord> slow_
        RECOIL_GUARDED_BY(mu_);  ///< unordered; min replaced on insert
    std::deque<TraceRecord> failed_
        RECOIL_GUARDED_BY(mu_);  ///< push_back new, pop_front old
    /// Duration floor of the slow set once full (0 = not full yet): the
    /// lock-free gate behind interesting() — a documented escape, read
    /// without mu_ on the hot path and published under it by record().
    std::atomic<u64> slow_floor_ns_{0};
    std::atomic<u64> recorded_{0};
    u64 seq_ RECOIL_GUARDED_BY(mu_) = 0;
};

}  // namespace recoil::obs
