#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <string_view>

namespace recoil::obs {

double HistogramSnapshot::percentile(double q) const noexcept {
    if (count == 0) return 0.0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    const double need = q * static_cast<double>(count);
    double cum = 0;
    int last_nonempty = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
        const u64 b = buckets[i];
        if (b == 0) continue;
        last_nonempty = i;
        if (cum + static_cast<double>(b) >= need) {
            const double lo =
                static_cast<double>(Histogram::bucket_lo_ns(i));
            // The open upper bound interpolates to 2^(i+1); the final
            // bucket is unbounded, so its estimate saturates at 2*lo.
            const double hi = i >= Histogram::kBuckets - 1
                                  ? 2.0 * lo
                                  : static_cast<double>(
                                        Histogram::bucket_hi_ns(i));
            const double frac =
                need <= cum ? 0.0 : (need - cum) / static_cast<double>(b);
            return (lo + (hi - lo) * frac) / 1e9;
        }
        cum += static_cast<double>(b);
    }
    // count said more samples than the buckets hold (a racing writer
    // between the two loads): report the top of the last occupied bucket.
    return static_cast<double>(Histogram::bucket_hi_ns(last_nonempty)) / 1e9;
}

const u64* MetricsSnapshot::find(const std::string& name) const noexcept {
    for (const auto& [n, v] : counters)
        if (n == name) return &v;
    for (const auto& [n, v] : gauges)
        if (n == name) return &v;
    return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::find_histogram(
    const std::string& name) const noexcept {
    for (const HistogramSnapshot& h : histograms)
        if (h.name == name) return &h;
    return nullptr;
}

namespace {

std::string fmt_u64(u64 v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string fmt_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

/// Metric family name of a possibly-labeled series (`a{b="c"}` -> `a`).
std::string_view base_name(std::string_view series) {
    return series.substr(0, series.find('{'));
}

/// JSON-escape a series name (labeled names carry `"` characters).
std::string json_key(const std::string& name) {
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
    }
    return out;
}

}  // namespace

std::string MetricsSnapshot::to_prometheus() const {
    std::string out;
    // One # TYPE line per consecutive run of a family: a labeled series
    // (`name{shard="0"}`) sorts directly after its unlabeled aggregate, so
    // the family header is emitted once for the whole run.
    std::string_view last_base;
    for (const auto& [name, value] : counters) {
        if (base_name(name) != last_base) {
            last_base = base_name(name);
            out += "# TYPE " + std::string(last_base) + " counter\n";
        }
        out += name + " " + fmt_u64(value) + "\n";
    }
    last_base = {};
    for (const auto& [name, value] : gauges) {
        if (base_name(name) != last_base) {
            last_base = base_name(name);
            out += "# TYPE " + std::string(last_base) + " gauge\n";
        }
        out += name + " " + fmt_u64(value) + "\n";
    }
    for (const HistogramSnapshot& h : histograms) {
        out += "# TYPE " + h.name + " histogram\n";
        u64 cum = 0;
        for (int i = 0; i < Histogram::kBuckets; ++i) {
            if (h.buckets[i] == 0) continue;  // sparse: skip empty octaves
            cum += h.buckets[i];
            const double le =
                static_cast<double>(Histogram::bucket_hi_ns(i)) / 1e9;
            out += h.name + "_bucket{le=\"" + fmt_double(le) + "\"} " +
                   fmt_u64(cum) + "\n";
        }
        out += h.name + "_bucket{le=\"+Inf\"} " + fmt_u64(h.count) + "\n";
        out += h.name + "_sum " +
               fmt_double(static_cast<double>(h.sum_ns) / 1e9) + "\n";
        out += h.name + "_count " + fmt_u64(h.count) + "\n";
    }
    return out;
}

std::string MetricsSnapshot::to_json() const {
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : counters) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        out += "\"" + json_key(name) + "\": " + fmt_u64(value);
    }
    out += "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto& [name, value] : gauges) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        out += "\"" + json_key(name) + "\": " + fmt_u64(value);
    }
    out += "\n  },\n  \"histograms\": {";
    first = true;
    for (const HistogramSnapshot& h : histograms) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        out += "\"" + h.name + "\": {\"count\": " + fmt_u64(h.count) +
               ", \"sum_seconds\": " +
               fmt_double(static_cast<double>(h.sum_ns) / 1e9) +
               ", \"mean_seconds\": " + fmt_double(h.mean_seconds()) +
               ", \"p50\": " + fmt_double(h.p50()) +
               ", \"p90\": " + fmt_double(h.p90()) +
               ", \"p99\": " + fmt_double(h.p99()) +
               ", \"p999\": " + fmt_double(h.p999()) + ", \"buckets\": [";
        bool bfirst = true;
        for (int i = 0; i < Histogram::kBuckets; ++i) {
            if (h.buckets[i] == 0) continue;
            if (!bfirst) out += ", ";
            bfirst = false;
            out += "[" +
                   fmt_double(static_cast<double>(Histogram::bucket_hi_ns(i)) /
                              1e9) +
                   ", " + fmt_u64(h.buckets[i]) + "]";
        }
        out += "]}";
    }
    out += "\n  }\n}";
    return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
    util::MutexLock lk(mu_);
    auto& slot = counters_[name];
    if (slot == nullptr) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    util::MutexLock lk(mu_);
    auto& slot = gauges_[name];
    if (slot == nullptr) slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
    util::MutexLock lk(mu_);
    auto& slot = histograms_[name];
    if (slot == nullptr) slot = std::make_unique<Histogram>();
    return *slot;
}

void MetricsRegistry::register_callback(const std::string& name,
                                        MetricKind kind, Callback fn) {
    util::MutexLock lk(mu_);
    callbacks_[name] = {kind, std::move(fn)};
}

void MetricsRegistry::register_callback(const std::string& name,
                                        const std::string& labels,
                                        MetricKind kind, Callback fn) {
    if (labels.empty()) {
        register_callback(name, kind, std::move(fn));
        return;
    }
    util::MutexLock lk(mu_);
    callbacks_[name + "{" + labels + "}"] = {kind, std::move(fn)};
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    MetricsSnapshot snap;
    util::MutexLock lk(mu_);
    snap.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_)
        snap.counters.emplace_back(name, c->value());
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_)
        snap.gauges.emplace_back(name, g->value());
    // Callbacks are invoked under the registry mutex: registration order is
    // stable and a component being re-bound concurrently cannot interleave
    // with the poll. Callbacks must not call back into this registry.
    for (const auto& [name, kg] : callbacks_) {
        const u64 v = kg.second ? kg.second() : 0;
        (kg.first == MetricKind::counter ? snap.counters : snap.gauges)
            .emplace_back(name, v);
    }
    std::sort(snap.counters.begin(), snap.counters.end());
    std::sort(snap.gauges.begin(), snap.gauges.end());
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
        HistogramSnapshot hs;
        hs.name = name;
        // Count first, buckets after: a racing observe_ns bumps buckets
        // before count, so buckets may run AHEAD of count but the estimator
        // never reports fewer samples than the count it normalizes by.
        hs.count = h->count();
        hs.sum_ns = h->sum_ns();
        for (int i = 0; i < Histogram::kBuckets; ++i)
            hs.buckets[i] = h->bucket(i);
        snap.histograms.push_back(std::move(hs));
    }
    return snap;
}

}  // namespace recoil::obs
