#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace recoil::obs {

u64 next_trace_id() noexcept {
    static std::atomic<u64> seq{0};
    return seq.fetch_add(1, std::memory_order_relaxed) + 1;
}

void SlowRequestLog::record(TraceRecord rec) {
    util::MutexLock lk(mu_);
    rec.sequence = ++seq_;
    recorded_.fetch_add(1, std::memory_order_relaxed);
    if (rec.failed && failed_slots_ != 0) {
        failed_.push_back(rec);
        if (failed_.size() > failed_slots_) failed_.pop_front();
    }
    if (slow_slots_ == 0 || rec.failed) return;
    if (slow_.size() < slow_slots_) {
        slow_.push_back(std::move(rec));
    } else {
        auto min_it = std::min_element(
            slow_.begin(), slow_.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
                return a.total_seconds < b.total_seconds;
            });
        if (rec.total_seconds <= min_it->total_seconds) return;
        *min_it = std::move(rec);
    }
    if (slow_.size() == slow_slots_) {
        const auto floor_it = std::min_element(
            slow_.begin(), slow_.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
                return a.total_seconds < b.total_seconds;
            });
        slow_floor_ns_.store(
            static_cast<u64>(floor_it->total_seconds * 1e9),
            std::memory_order_relaxed);
    }
}

std::vector<TraceRecord> SlowRequestLog::slowest() const {
    util::MutexLock lk(mu_);
    std::vector<TraceRecord> out = slow_;
    std::sort(out.begin(), out.end(),
              [](const TraceRecord& a, const TraceRecord& b) {
                  return a.total_seconds > b.total_seconds;
              });
    return out;
}

std::vector<TraceRecord> SlowRequestLog::recent_failures() const {
    util::MutexLock lk(mu_);
    return {failed_.rbegin(), failed_.rend()};
}

namespace {

std::string fmt_u64(u64 v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string fmt_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

void append_record(std::string& out, const TraceRecord& r) {
    out += "{\"id\": " + fmt_u64(r.id) + ", \"op\": \"" + json_escape(r.op) +
           "\", \"asset\": \"" + json_escape(r.asset) +
           "\", \"failed\": " + (r.failed ? "true" : "false") +
           ", \"code\": " + fmt_u64(r.code) + ", \"code_name\": \"" +
           json_escape(r.code_name) + "\", \"detail\": \"" +
           json_escape(r.detail) +
           "\", \"cache_hit\": " + (r.cache_hit ? "true" : "false") +
           ", \"total_seconds\": " + fmt_double(r.total_seconds) +
           ", \"wire_bytes\": " + fmt_u64(r.wire_bytes) + ", \"spans\": [";
    bool first = true;
    for (const SpanRecord& s : r.spans) {
        if (!first) out += ", ";
        first = false;
        out += "{\"name\": \"" + json_escape(s.name) +
               "\", \"start\": " + fmt_double(s.start_seconds) +
               ", \"duration\": " + fmt_double(s.duration_seconds) +
               ", \"depth\": " + fmt_u64(static_cast<u64>(s.depth)) + "}";
    }
    out += "]}";
}

}  // namespace

std::string SlowRequestLog::to_json() const {
    const auto slow = slowest();
    const auto failed = recent_failures();
    std::string out = "{\n  \"slowest\": [";
    bool first = true;
    for (const TraceRecord& r : slow) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        append_record(out, r);
    }
    out += "\n  ],\n  \"failures\": [";
    first = true;
    for (const TraceRecord& r : failed) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        append_record(out, r);
    }
    out += "\n  ]\n}";
    return out;
}

}  // namespace recoil::obs
