#pragma once
// Lock-cheap metrics substrate for the serve stack. Three primitives —
// monotonic Counter, set-to-current Gauge, and a fixed-bucket log2-scale
// latency Histogram — all built on relaxed atomics, so a hot serve path
// records a sample with one or two fetch_adds and never takes a lock. The
// MetricsRegistry names them: components obtain stable Counter*/Histogram*
// pointers once (registration takes the registry mutex; recording never
// does) or register callback metrics that are polled at snapshot time —
// how the pre-existing stats structs (CacheStats, GovernorStats, Totals,
// Session::Stats) surface through the registry without double-counting:
// the callback reads the same atomics/mutex-guarded counters the stats()
// API reports, so both views are bit-identical by construction.
//
// snapshot() produces a MetricsSnapshot: a point-in-time copy renderable
// as Prometheus text exposition or JSON. Consistency contract: each metric
// is internally consistent (atomic loads; a histogram's buckets may lag
// its count by in-flight samples), cross-metric skew is bounded by the
// snapshot's own duration. That is the standard contract for lock-free
// telemetry — the alternative (a global stop-the-world lock on the serve
// path) is exactly what this layer exists to avoid.

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/ints.hpp"
#include "util/thread_annotations.hpp"

namespace recoil::obs {

/// Monotonic event count. Relaxed increments: ordering between counters is
/// not promised, totals are.
class Counter {
public:
    void inc(u64 n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
    u64 value() const noexcept { return v_.load(std::memory_order_relaxed); }

private:
    std::atomic<u64> v_{0};
};

/// Last-written level (bytes resident, entries held, ...).
class Gauge {
public:
    void set(u64 v) noexcept { v_.store(v, std::memory_order_relaxed); }
    void add(u64 n) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
    void sub(u64 n) noexcept { v_.fetch_sub(n, std::memory_order_relaxed); }
    u64 value() const noexcept { return v_.load(std::memory_order_relaxed); }

private:
    std::atomic<u64> v_{0};
};

/// Fixed-bucket log-scale latency histogram. Bucket i holds samples in
/// [2^i, 2^(i+1)) nanoseconds (bucket 0 additionally holds 0 ns; the last
/// bucket absorbs everything above ~2^63 ns — unreachable in practice), so
/// one branchless bit_width() places a sample and the whole record path is
/// three relaxed fetch_adds. 64 octaves span 1 ns to beyond a century:
/// every latency this stack can produce lands in a real bucket.
class Histogram {
public:
    static constexpr int kBuckets = 64;

    /// floor(log2(ns)) clamped to [0, kBuckets); 0 ns maps to bucket 0.
    static int bucket_of(u64 ns) noexcept {
        return ns == 0 ? 0 : std::bit_width(ns) - 1;
    }
    /// Inclusive lower bound of bucket i in ns (bucket 0 starts at 0).
    static u64 bucket_lo_ns(int i) noexcept {
        return i == 0 ? 0 : u64{1} << i;
    }
    /// Exclusive upper bound of bucket i in ns.
    static u64 bucket_hi_ns(int i) noexcept {
        return i >= kBuckets - 1 ? ~u64{0} : u64{1} << (i + 1);
    }

    void observe_ns(u64 ns) noexcept {
        buckets_[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    }
    void observe(double seconds) noexcept {
        observe_ns(seconds <= 0 ? 0 : static_cast<u64>(seconds * 1e9));
    }

    u64 count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }
    u64 sum_ns() const noexcept {
        return sum_ns_.load(std::memory_order_relaxed);
    }
    u64 bucket(int i) const noexcept {
        return buckets_[i].load(std::memory_order_relaxed);
    }

private:
    std::array<std::atomic<u64>, kBuckets> buckets_{};
    std::atomic<u64> count_{0};
    std::atomic<u64> sum_ns_{0};
};

/// Point-in-time copy of one histogram, with quantile extraction. The
/// estimator is deterministic and documented (tests pin it against an
/// independent reference): find the bucket where the cumulative count
/// reaches rank q*count, then interpolate linearly inside [lo, hi).
struct HistogramSnapshot {
    std::string name;
    u64 count = 0;
    u64 sum_ns = 0;
    std::array<u64, Histogram::kBuckets> buckets{};

    /// Quantile q in [0, 1], in SECONDS. 0 when empty.
    double percentile(double q) const noexcept;
    double p50() const noexcept { return percentile(0.50); }
    double p90() const noexcept { return percentile(0.90); }
    double p99() const noexcept { return percentile(0.99); }
    double p999() const noexcept { return percentile(0.999); }
    double mean_seconds() const noexcept {
        return count == 0 ? 0.0
                          : static_cast<double>(sum_ns) /
                                (1e9 * static_cast<double>(count));
    }
};

/// Counter vs gauge, for exposition typing of callback metrics.
enum class MetricKind : u8 { counter, gauge };

/// Point-in-time view of a whole registry: scalar metrics sorted by name
/// (std::map order — deterministic exposition), histograms likewise.
struct MetricsSnapshot {
    std::vector<std::pair<std::string, u64>> counters;
    std::vector<std::pair<std::string, u64>> gauges;
    std::vector<HistogramSnapshot> histograms;

    /// Value of a named counter or gauge; nullopt when absent.
    const u64* find(const std::string& name) const noexcept;
    const HistogramSnapshot* find_histogram(
        const std::string& name) const noexcept;

    /// Prometheus text exposition format (# TYPE lines, histogram buckets
    /// as cumulative le-labeled series plus _sum/_count).
    std::string to_prometheus() const;
    /// One JSON object: {"counters": {...}, "gauges": {...},
    /// "histograms": {name: {count, sum_seconds, mean/p50/p90/p99/p999,
    /// buckets: [[le_seconds, count], ...nonempty only]}}.
    std::string to_json() const;
};

/// Named metric directory. counter()/gauge()/histogram() are get-or-create
/// and return references stable for the registry's lifetime (hold the
/// pointer; never re-look-up on a hot path). register_callback() attaches a
/// polled metric: the function is invoked at snapshot() time only — the
/// mechanism by which existing stats structs join the registry without a
/// second set of hot-path writes. Re-registering a callback name replaces
/// it (a replaced component, e.g. a re-attached DiskStore, takes over its
/// names).
class MetricsRegistry {
public:
    Counter& counter(const std::string& name) RECOIL_EXCLUDES(mu_);
    Gauge& gauge(const std::string& name) RECOIL_EXCLUDES(mu_);
    Histogram& histogram(const std::string& name) RECOIL_EXCLUDES(mu_);

    using Callback = std::function<u64()>;
    void register_callback(const std::string& name, MetricKind kind,
                           Callback fn) RECOIL_EXCLUDES(mu_);
    /// Labeled callback series: `labels` is raw Prometheus label syntax
    /// (e.g. `shard="3"`). The series is exposed as `name{labels}` — one
    /// `# TYPE` line per base name covers all its label permutations — and
    /// keyed by the full labeled string, so (name, labels) pairs replace
    /// independently. Empty labels degrade to the unlabeled overload.
    void register_callback(const std::string& name, const std::string& labels,
                           MetricKind kind, Callback fn) RECOIL_EXCLUDES(mu_);

    MetricsSnapshot snapshot() const RECOIL_EXCLUDES(mu_);

private:
    // mu_ guards the name->metric directory only. The metric objects
    // themselves (Counter/Gauge/Histogram) are relaxed atomics recorded
    // against via stable pointers — the documented lock-free escape that
    // keeps the serve hot path from ever taking this mutex.
    mutable util::Mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_
        RECOIL_GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<Gauge>> gauges_
        RECOIL_GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<Histogram>> histograms_
        RECOIL_GUARDED_BY(mu_);
    std::map<std::string, std::pair<MetricKind, Callback>> callbacks_
        RECOIL_GUARDED_BY(mu_);
};

}  // namespace recoil::obs
