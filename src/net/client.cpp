#include "net/client.hpp"

namespace recoil::net {

namespace {

/// A v1 "RCRS" response frame, as opposed to a v2 stream frame — the
/// negotiation signal request_streamed() must handle (typed errors for
/// undecodable requests come back materialized).
bool is_v1_response(std::span<const u8> frame) {
    return frame.size() >= 5 && frame[0] == 'R' && frame[1] == 'C' &&
           frame[2] == 'R' && frame[3] == 'S' &&
           frame[4] == serve::kProtocolVersion;
}

}  // namespace

Client::Client(ClientOptions opt)
    : opt_(std::move(opt)),
      fd_(connect_tcp(opt_.host, opt_.port,
                      Deadline::after(opt_.connect_timeout))),
      reader_(opt_.max_response_frame) {}

std::vector<u8> Client::read_frame(Deadline deadline) {
    for (;;) {
        if (auto frame = reader_.next()) return std::move(*frame);
        u8 buf[64 * 1024];
        std::size_t n = recv_some(fd_.get(), buf, deadline);
        if (n == 0) {
            net_fail(NetErrorCode::closed,
                     reader_.empty()
                         ? "server closed the connection"
                         : "server closed the connection mid-frame");
        }
        reader_.feed(std::span<const u8>(buf, n));
    }
}

std::vector<u8> Client::roundtrip_frame(std::span<const u8> frame) {
    Deadline deadline = Deadline::after(opt_.io_timeout);
    std::vector<u8> framed;
    framed.reserve(frame.size() + 4);
    append_net_frame(framed, frame);
    send_all(fd_.get(), framed, deadline);
    return read_frame(deadline);
}

serve::ServeResult Client::request(const serve::ServeRequest& req) {
    std::vector<u8> resp = roundtrip_frame(serve::encode_request(req));
    return serve::decode_response(resp);
}

serve::ServeResult Client::request_streamed(const serve::ServeRequest& req,
                                            FrameCallback on_frame) {
    serve::ServeRequest streamed = req;
    streamed.accept |= serve::kAcceptStreamed;
    serve::StreamReassembler reasm;
    u32 resumes_left = opt_.stream_resume_attempts;
    for (;;) {
        try {
            Deadline deadline = Deadline::after(opt_.io_timeout);
            std::vector<u8> framed;
            append_net_frame(framed, serve::encode_request(streamed));
            send_all(fd_.get(), framed, deadline);
            for (;;) {
                std::vector<u8> frame = read_frame(deadline);
                if (is_v1_response(frame))
                    return serve::decode_response(frame);
                if (on_frame) on_frame(frame);
                if (reasm.feed(frame)) return reasm.result();
            }
        } catch (const NetError&) {
            // Resumable only after an ok header: re-dial, re-request at
            // the received byte offset, and keep the SAME reassembler —
            // its accumulated wire and digest validate prefix + tail
            // against the resumed FIN, bit-exact with an uninterrupted
            // stream. A dead partial transport frame dies with reader_.
            if (resumes_left == 0 || !reasm.resumable()) throw;
            --resumes_left;
            fd_ = connect_tcp(opt_.host, opt_.port,
                              Deadline::after(opt_.connect_timeout));
            reader_ = FrameReader(opt_.max_response_frame);
            streamed.resume_offset = reasm.bytes_received();
            reasm.begin_resume();
        }
    }
}

std::string Client::fetch_metrics(bool json) {
    serve::ServeRequest req;
    req.asset = json ? serve::kMetricsAssetJson : serve::kMetricsAssetText;
    req.accept = serve::kAcceptAll | serve::kAcceptMetrics;
    serve::ServeResult res = request(req);
    if (!res.ok())
        throw serve::ProtocolError(res.code, "metrics scrape failed: " +
                                                 res.detail);
    return res.wire ? std::string(res.wire->begin(), res.wire->end())
                    : std::string();
}

}  // namespace recoil::net
