#pragma once
// Thin POSIX socket utilities shared by the daemon and the client: an RAII
// fd, a monotonic deadline, and blocking helpers (connect with timeout,
// send-all, recv-some) that hide EINTR/poll plumbing. Everything here is
// deliberately synchronous — the daemon's epoll loop uses raw nonblocking
// syscalls directly and only borrows Fd from this header.

#include <chrono>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "net/error.hpp"
#include "util/ints.hpp"

namespace recoil::net {

/// Owning file descriptor. Move-only; closes on destruction.
class Fd {
public:
    Fd() = default;
    explicit Fd(int fd) noexcept : fd_(fd) {}
    Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
    Fd& operator=(Fd&& other) noexcept {
        if (this != &other) {
            reset();
            fd_ = std::exchange(other.fd_, -1);
        }
        return *this;
    }
    Fd(const Fd&) = delete;
    Fd& operator=(const Fd&) = delete;
    ~Fd() { reset(); }

    int get() const noexcept { return fd_; }
    bool valid() const noexcept { return fd_ >= 0; }
    int release() noexcept { return std::exchange(fd_, -1); }
    void reset() noexcept;

private:
    int fd_ = -1;
};

/// Monotonic deadline. A zero/negative timeout means "no deadline".
class Deadline {
public:
    static Deadline after(std::chrono::milliseconds timeout) {
        Deadline d;
        if (timeout.count() > 0)
            d.at_ = std::chrono::steady_clock::now() + timeout;
        return d;
    }
    static Deadline none() { return Deadline{}; }

    bool expired() const {
        return at_ && std::chrono::steady_clock::now() >= *at_;
    }
    /// Milliseconds left, clamped to >= 0; -1 (poll's "infinite") if none.
    int remaining_ms() const;

private:
    std::optional<std::chrono::steady_clock::time_point> at_;
};

/// Resolve + connect a TCP socket to host:port, observing the deadline.
/// The returned fd is in *blocking* mode. Throws NetError{connect_failed}
/// or NetError{timeout}.
Fd connect_tcp(const std::string& host, u16 port, Deadline deadline);

/// Write the whole span, looping over partial sends, EINTR and EAGAIN
/// (polling for writability under the deadline). MSG_NOSIGNAL — a dead
/// peer yields NetError{closed}, never SIGPIPE.
void send_all(int fd, std::span<const u8> bytes, Deadline deadline);

/// Read up to `buf.size()` bytes, blocking (via poll) under the deadline.
/// Returns 0 on orderly EOF. Throws NetError{timeout} / {io_error}.
std::size_t recv_some(int fd, std::span<u8> buf, Deadline deadline);

/// Disable Nagle; best effort (loopback tests don't care if it fails).
void set_nodelay(int fd) noexcept;

}  // namespace recoil::net
