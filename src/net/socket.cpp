#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace recoil::net {

namespace {

std::string errno_str(const char* op) {
    return std::string(op) + ": " + std::strerror(errno);
}

void set_blocking(int fd, bool blocking) {
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0) return;
    if (blocking)
        ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
    else
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// poll() one fd for `events`, honouring the deadline and retrying EINTR.
/// Returns the revents, or throws NetError{timeout}.
short poll_wait(int fd, short events, Deadline deadline, const char* what) {
    for (;;) {
        struct pollfd pfd{fd, events, 0};
        int rc = ::poll(&pfd, 1, deadline.remaining_ms());
        if (rc < 0) {
            if (errno == EINTR) continue;
            net_fail(NetErrorCode::io_error, errno_str("poll"));
        }
        if (rc == 0)
            net_fail(NetErrorCode::timeout, std::string(what) + " timed out");
        return pfd.revents;
    }
}

}  // namespace

void Fd::reset() noexcept {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
}

int Deadline::remaining_ms() const {
    if (!at_) return -1;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        *at_ - std::chrono::steady_clock::now());
    return left.count() <= 0 ? 0 : static_cast<int>(left.count());
}

Fd connect_tcp(const std::string& host, u16 port, Deadline deadline) {
    struct addrinfo hints {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo* res = nullptr;
    const std::string port_str = std::to_string(port);
    int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
    if (rc != 0)
        net_fail(NetErrorCode::connect_failed,
                 "resolve " + host + ": " + ::gai_strerror(rc));

    std::string last_err = "no addresses";
    for (struct addrinfo* ai = res; ai; ai = ai->ai_next) {
        Fd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
        if (!fd.valid()) {
            last_err = errno_str("socket");
            continue;
        }
        // Nonblocking connect so the deadline applies to the handshake.
        set_blocking(fd.get(), false);
        rc = ::connect(fd.get(), ai->ai_addr, ai->ai_addrlen);
        if (rc != 0 && errno != EINPROGRESS) {
            last_err = errno_str("connect");
            continue;
        }
        if (rc != 0) {
            short revents;
            try {
                revents = poll_wait(fd.get(), POLLOUT, deadline, "connect");
            } catch (const NetError& e) {
                if (e.code() == NetErrorCode::timeout) {
                    ::freeaddrinfo(res);
                    throw;
                }
                last_err = e.what();
                continue;
            }
            (void)revents;
            int soerr = 0;
            socklen_t len = sizeof(soerr);
            ::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &soerr, &len);
            if (soerr != 0) {
                last_err = std::string("connect: ") + std::strerror(soerr);
                continue;
            }
        }
        set_blocking(fd.get(), true);
        set_nodelay(fd.get());
        ::freeaddrinfo(res);
        return fd;
    }
    ::freeaddrinfo(res);
    net_fail(NetErrorCode::connect_failed,
             "connect " + host + ":" + port_str + ": " + last_err);
}

void send_all(int fd, std::span<const u8> bytes, Deadline deadline) {
    // Poll before each send so the deadline holds even on a blocking fd.
    std::size_t off = 0;
    while (off < bytes.size()) {
        poll_wait(fd, POLLOUT, deadline, "send");
        ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                           MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR))
            continue;
        if (n < 0 && (errno == EPIPE || errno == ECONNRESET))
            net_fail(NetErrorCode::closed, "peer closed connection mid-send");
        net_fail(NetErrorCode::io_error, errno_str("send"));
    }
}

std::size_t recv_some(int fd, std::span<u8> buf, Deadline deadline) {
    for (;;) {
        poll_wait(fd, POLLIN, deadline, "recv");
        ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
        if (n >= 0) return static_cast<std::size_t>(n);
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
        if (errno == ECONNRESET)
            net_fail(NetErrorCode::closed, "peer reset connection");
        net_fail(NetErrorCode::io_error, errno_str("recv"));
    }
}

void set_nodelay(int fd) noexcept {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

const char* net_error_name(NetErrorCode code) noexcept {
    switch (code) {
        case NetErrorCode::connect_failed: return "connect_failed";
        case NetErrorCode::timeout: return "timeout";
        case NetErrorCode::closed: return "closed";
        case NetErrorCode::io_error: return "io_error";
        case NetErrorCode::frame_too_large: return "frame_too_large";
        case NetErrorCode::daemon_error: return "daemon_error";
    }
    return "unknown";
}

}  // namespace recoil::net
