#include "net/daemon.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <deque>
#include <optional>
#include <vector>

#ifdef __linux__
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace recoil::net {

struct Daemon::AtomicStats {
    std::atomic<u64> accepted{0};
    std::atomic<u64> refused{0};
    std::atomic<u64> requests{0};
    std::atomic<u64> streamed{0};
    std::atomic<u64> idle_closed{0};
    std::atomic<u64> protocol_errors{0};
    std::atomic<u64> drains{0};
    std::atomic<u64> connections{0};
    std::atomic<u64> peak_connections{0};
    std::atomic<u64> conn_buffer_peak{0};

    void note_peak_buffer(u64 owned) noexcept {
        u64 cur = conn_buffer_peak.load(std::memory_order_relaxed);
        while (owned > cur &&
               !conn_buffer_peak.compare_exchange_weak(
                   cur, owned, std::memory_order_relaxed)) {
        }
    }
};

Daemon::Stats Daemon::stats() const noexcept {
    const AtomicStats& s = *stats_;
    Stats out;
    out.accepted = s.accepted.load(std::memory_order_relaxed);
    out.refused = s.refused.load(std::memory_order_relaxed);
    out.requests = s.requests.load(std::memory_order_relaxed);
    out.streamed = s.streamed.load(std::memory_order_relaxed);
    out.idle_closed = s.idle_closed.load(std::memory_order_relaxed);
    out.protocol_errors = s.protocol_errors.load(std::memory_order_relaxed);
    out.drains = s.drains.load(std::memory_order_relaxed);
    out.connections = s.connections.load(std::memory_order_relaxed);
    out.peak_connections = s.peak_connections.load(std::memory_order_relaxed);
    out.conn_buffer_peak_bytes =
        s.conn_buffer_peak.load(std::memory_order_relaxed);
    return out;
}

#ifdef __linux__

namespace detail {

/// Per-connection state machine. Owned memory is the outbound buffer (at
/// most one transport-framed response/stream frame), the FrameReader's
/// partial inbound frame, and queued complete request frames — each piece
/// individually bounded, and reads stop while any response is in flight,
/// so the total stays O(max_frame).
struct Conn {
    Fd fd;
    FrameReader reader;
    std::vector<u8> out;
    std::size_t out_off = 0;
    std::deque<std::vector<u8>> pending;
    std::size_t pending_bytes = 0;
    std::optional<serve::ServeStream> stream;
    bool readable = false;
    bool writable = true;  ///< fresh sockets are writable until EAGAIN says not
    bool rd_eof = false;
    u32 lt_mask = 0;  ///< currently registered epoll interest (LT mode)
    std::chrono::steady_clock::time_point last_activity;

    explicit Conn(Fd f, u32 max_frame)
        : fd(std::move(f)),
          reader(max_frame),
          last_activity(std::chrono::steady_clock::now()) {}

    bool out_pending() const noexcept { return out_off < out.size(); }
    bool quiesced() const noexcept {
        return !out_pending() && !stream && pending.empty();
    }
    u64 owned_bytes() const noexcept {
        return static_cast<u64>(out.size() - out_off) +
               reader.buffered_bytes() + pending_bytes;
    }
};

}  // namespace detail

using detail::Conn;

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;
/// Queued-but-undispatched request frames per connection before the loop
/// stops reading (pipelining bound; reads resume as the queue drains).
constexpr std::size_t kMaxPendingRequests = 64;

std::string errno_str(const char* op) {
    return std::string(op) + ": " + std::strerror(errno);
}

[[noreturn]] void daemon_fail(const char* op) {
    net_fail(NetErrorCode::daemon_error, errno_str(op));
}

}  // namespace

Daemon::Daemon(serve::ContentServer& server, DaemonOptions opt)
    : server_(server),
      opt_(std::move(opt)),
      last_idle_sweep_(std::chrono::steady_clock::now()),
      stats_(std::make_shared<AtomicStats>()) {
    // Listener.
    struct addrinfo hints {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    struct addrinfo* res = nullptr;
    const std::string port_str = std::to_string(opt_.port);
    int rc = ::getaddrinfo(opt_.bind_address.c_str(), port_str.c_str(), &hints,
                           &res);
    if (rc != 0)
        net_fail(NetErrorCode::daemon_error,
                 "resolve " + opt_.bind_address + ": " + ::gai_strerror(rc));
    for (struct addrinfo* ai = res; ai; ai = ai->ai_next) {
        Fd fd(::socket(ai->ai_family,
                       ai->ai_socktype | SOCK_NONBLOCK | SOCK_CLOEXEC,
                       ai->ai_protocol));
        if (!fd.valid()) continue;
        int one = 1;
        ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0) continue;
        if (::listen(fd.get(), opt_.listen_backlog) != 0) continue;
        listen_fd_ = std::move(fd);
        break;
    }
    ::freeaddrinfo(res);
    if (!listen_fd_.valid())
        net_fail(NetErrorCode::daemon_error,
                 "cannot bind/listen on " + opt_.bind_address + ":" + port_str);
    // Resolve the actual port (opt.port == 0 picks an ephemeral one).
    struct sockaddr_storage ss {};
    socklen_t slen = sizeof(ss);
    if (::getsockname(listen_fd_.get(),
                      reinterpret_cast<struct sockaddr*>(&ss), &slen) != 0)
        daemon_fail("getsockname");
    if (ss.ss_family == AF_INET)
        port_ = ntohs(reinterpret_cast<struct sockaddr_in*>(&ss)->sin_port);
    else if (ss.ss_family == AF_INET6)
        port_ = ntohs(reinterpret_cast<struct sockaddr_in6*>(&ss)->sin6_port);

    epoll_fd_ = Fd(::epoll_create1(EPOLL_CLOEXEC));
    if (!epoll_fd_.valid()) daemon_fail("epoll_create1");
    drain_fd_ = Fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
    if (!drain_fd_.valid()) daemon_fail("eventfd");

    struct epoll_event ev {};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_.get();
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, listen_fd_.get(), &ev) != 0)
        daemon_fail("epoll_ctl(listener)");
    ev.data.fd = drain_fd_.get();
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, drain_fd_.get(), &ev) != 0)
        daemon_fail("epoll_ctl(eventfd)");

    // daemon_* metrics poll the shared stats block — callbacks stay valid
    // even if the registry outlives this daemon.
    auto& m = server_.metrics();
    auto s = stats_;
    using obs::MetricKind;
    m.register_callback("daemon_accepted_total", MetricKind::counter,
                        [s] { return s->accepted.load(); });
    m.register_callback("daemon_refused_total", MetricKind::counter,
                        [s] { return s->refused.load(); });
    m.register_callback("daemon_requests_total", MetricKind::counter,
                        [s] { return s->requests.load(); });
    m.register_callback("daemon_streamed_total", MetricKind::counter,
                        [s] { return s->streamed.load(); });
    m.register_callback("daemon_idle_closed_total", MetricKind::counter,
                        [s] { return s->idle_closed.load(); });
    m.register_callback("daemon_protocol_errors_total", MetricKind::counter,
                        [s] { return s->protocol_errors.load(); });
    m.register_callback("daemon_drains_total", MetricKind::counter,
                        [s] { return s->drains.load(); });
    m.register_callback("daemon_connections", MetricKind::gauge,
                        [s] { return s->connections.load(); });
    m.register_callback("daemon_peak_connections", MetricKind::gauge,
                        [s] { return s->peak_connections.load(); });
    m.register_callback("daemon_conn_buffer_peak_bytes", MetricKind::gauge,
                        [s] { return s->conn_buffer_peak.load(); });
}

Daemon::~Daemon() = default;

void Daemon::begin_drain() noexcept {
    const u64 one = 1;
    // write() to an eventfd is async-signal-safe; the result only matters
    // insofar as a full counter means a drain is already pending.
    [[maybe_unused]] ssize_t rc =
        ::write(drain_fd_.get(), &one, sizeof(one));
}

void Daemon::start_drain() {
    if (draining_) return;
    draining_ = true;
    stats_->drains.fetch_add(1, std::memory_order_relaxed);
    if (listen_fd_.valid()) {
        ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, listen_fd_.get(), nullptr);
        listen_fd_.reset();  // new connects now refused by the kernel
    }
    // Quiesced connections (nothing received, nothing in flight) close
    // now; the rest finish their streams/queued requests and flush.
    std::vector<int> fds;
    fds.reserve(conns_.size());
    for (auto& [fd, c] : conns_) fds.push_back(fd);
    for (int fd : fds) {
        auto it = conns_.find(fd);
        if (it != conns_.end()) service(*it->second);
    }
}

void Daemon::accept_ready() {
    for (;;) {
        int fd = ::accept4(listen_fd_.get(), nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR) continue;
            break;  // EAGAIN, or transient (ECONNABORTED, EMFILE, ...)
        }
        if (opt_.max_connections != 0 &&
            conns_.size() >= opt_.max_connections) {
            stats_->refused.fetch_add(1, std::memory_order_relaxed);
            ::close(fd);  // deterministic EOF for the peer
            continue;
        }
        set_nodelay(fd);
        auto conn = std::make_unique<Conn>(Fd(fd), opt_.max_request_frame);
        struct epoll_event ev {};
        ev.data.fd = fd;
        if (opt_.edge_triggered) {
            ev.events = EPOLLIN | EPOLLOUT | EPOLLET;
        } else {
            ev.events = EPOLLIN;
            conn->lt_mask = EPOLLIN;
        }
        if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
            continue;  // conn closes via Fd dtor
        }
        conns_.emplace(fd, std::move(conn));
        stats_->accepted.fetch_add(1, std::memory_order_relaxed);
        const u64 open = conns_.size();
        stats_->connections.store(open, std::memory_order_relaxed);
        u64 peak = stats_->peak_connections.load(std::memory_order_relaxed);
        if (open > peak)
            stats_->peak_connections.store(open, std::memory_order_relaxed);
    }
}

void Daemon::close_conn(int fd) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
    stalled_.erase(fd);
    conns_.erase(it);
    stats_->connections.store(conns_.size(), std::memory_order_relaxed);
}

bool Daemon::flush_out(Conn& c) {
    while (c.out_pending() && c.writable) {
        ssize_t n = ::send(c.fd.get(), c.out.data() + c.out_off,
                           c.out.size() - c.out_off, MSG_NOSIGNAL);
        if (n > 0) {
            c.out_off += static_cast<std::size_t>(n);
            c.last_activity = std::chrono::steady_clock::now();
            if (!c.out_pending()) {
                c.out.clear();
                c.out_off = 0;
            }
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            c.writable = false;
            return true;
        }
        if (n < 0 && errno == EINTR) continue;
        close_conn(c.fd.get());  // EPIPE/ECONNRESET/anything else
        return false;
    }
    return true;
}

bool Daemon::read_ready(Conn& c) {
    u8 buf[kReadChunk];
    const bool willing = !draining_ && !c.rd_eof && !c.out_pending() &&
                         !c.stream && c.pending.size() < kMaxPendingRequests;
    while (willing && c.readable) {
        ssize_t n = ::recv(c.fd.get(), buf, sizeof(buf), 0);
        if (n > 0) {
            c.last_activity = std::chrono::steady_clock::now();
            try {
                c.reader.feed(std::span<const u8>(buf,
                                                  static_cast<std::size_t>(n)));
            } catch (const NetError&) {
                stats_->protocol_errors.fetch_add(1,
                                                  std::memory_order_relaxed);
                close_conn(c.fd.get());
                return false;
            }
            while (auto frame = c.reader.next()) {
                c.pending_bytes += frame->size();
                c.pending.push_back(std::move(*frame));
            }
            stats_->note_peak_buffer(c.owned_bytes());
            // Stop pulling more off the wire once enough work is queued;
            // the kernel buffers, readable stays set, reads resume later.
            if (c.pending.size() >= kMaxPendingRequests) break;
            continue;
        }
        if (n == 0) {
            c.rd_eof = true;
            return true;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            c.readable = false;
            return true;
        }
        if (errno == EINTR) continue;
        close_conn(c.fd.get());
        return false;
    }
    return true;
}

void Daemon::dispatch(Conn& c, std::vector<u8> frame) {
    stats_->requests.fetch_add(1, std::memory_order_relaxed);
    // Route to the streamed path when this is a well-formed-looking v1
    // request frame whose accept byte carries kAcceptStreamed and whose
    // asset is real store content ('!' introspection names materialize
    // through serve_frame). Anything else — including a request that
    // fails to decode — goes through serve_frame, whose job is exactly
    // to turn defects into typed v1 error frames.
    const bool looks_v1_request =
        frame.size() >= 8 && frame[0] == 'R' && frame[1] == 'C' &&
        frame[2] == 'R' && frame[3] == 'Q' &&
        frame[4] == serve::kProtocolVersion;
    if (looks_v1_request && (frame[6] & serve::kAcceptStreamed) != 0) {
        try {
            serve::ServeRequest req = serve::decode_request(frame);
            if (!req.asset.empty() && req.asset[0] != '!') {
                c.stream.emplace(server_.serve_stream(req, opt_.stream));
                stats_->streamed.fetch_add(1, std::memory_order_relaxed);
                return;
            }
        } catch (const serve::ProtocolError&) {
            // fall through: serve_frame re-parses and answers with the
            // typed error frame the client expects
        }
    }
    std::vector<u8> resp = server_.serve_frame(frame);
    append_net_frame(c.out, resp);
    stats_->note_peak_buffer(c.owned_bytes());
}

bool Daemon::pump_output(Conn& c) {
    // Only generate into an empty outbound buffer: one frame in flight per
    // connection is the memory bound AND the backpressure (a stream's next
    // frame is not even produced until the previous one fully flushed).
    while (!c.out_pending()) {
        if (c.stream) {
            bool would_block = false;
            auto frame = c.stream->try_next_frame(would_block);
            if (frame) {
                append_net_frame(c.out, *frame);
                stats_->note_peak_buffer(c.owned_bytes());
                return true;
            }
            if (would_block) return false;  // producer not ready: park
            c.stream.reset();               // stream complete
            continue;
        }
        if (!c.pending.empty()) {
            std::vector<u8> frame = std::move(c.pending.front());
            c.pending.pop_front();
            c.pending_bytes -= frame.size();
            dispatch(c, std::move(frame));
            continue;
        }
        return true;  // nothing to do
    }
    return true;
}

void Daemon::update_interest(Conn& c) {
    if (opt_.edge_triggered) return;  // static mask
    u32 want = 0;
    const bool want_read = !draining_ && !c.rd_eof && !c.out_pending() &&
                           !c.stream &&
                           c.pending.size() < kMaxPendingRequests;
    if (want_read) want |= EPOLLIN;
    if (c.out_pending()) want |= EPOLLOUT;
    if (want == c.lt_mask) return;
    struct epoll_event ev {};
    ev.events = want;
    ev.data.fd = c.fd.get();
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, c.fd.get(), &ev) == 0)
        c.lt_mask = want;
}

void Daemon::service(Conn& c) {
    const int fd = c.fd.get();
    for (;;) {
        if (!flush_out(c)) return;  // c is gone
        if (!c.out_pending()) {
            if (!pump_output(c)) {  // stalled on the stream producer
                stalled_.insert(fd);
                update_interest(c);
                return;
            }
            if (c.out_pending()) continue;  // new frame: try to flush it
        }
        if (!read_ready(c)) return;  // c is gone
        // Progress is possible only if a queued request can dispatch into
        // the now-empty buffer or fresh bytes arrived; both looped above.
        if (c.out_pending() || c.stream || !c.pending.empty()) {
            if (c.out_pending() && !c.writable) break;  // wait for EPOLLOUT
            if (!c.out_pending() && !c.stream && !c.pending.empty())
                continue;  // dispatch next queued request
            if (c.stream && !c.out_pending()) continue;  // pull next frame
            break;
        }
        // Fully quiesced.
        if (c.rd_eof || draining_) {
            close_conn(fd);
            return;
        }
        if (!c.readable) break;  // wait for bytes
        // readable but unwilling can't happen here (quiesced => willing),
        // so looping again makes progress; but guard against surprises.
        break;
    }
    stats_->note_peak_buffer(c.owned_bytes());
    update_interest(c);
}

void Daemon::sweep_idle() {
    if (opt_.idle_timeout.count() <= 0) return;
    const auto now = std::chrono::steady_clock::now();
    if (now - last_idle_sweep_ < opt_.idle_timeout / 4) return;
    last_idle_sweep_ = now;
    std::vector<int> victims;
    for (auto& [fd, c] : conns_) {
        if (now - c->last_activity >= opt_.idle_timeout) victims.push_back(fd);
    }
    for (int fd : victims) {
        stats_->idle_closed.fetch_add(1, std::memory_order_relaxed);
        close_conn(fd);
    }
}

int Daemon::loop_timeout_ms() const {
    if (!stalled_.empty()) return 2;  // stream-producer retry cadence
    if (opt_.idle_timeout.count() > 0) {
        auto quarter = opt_.idle_timeout.count() / 4;
        return static_cast<int>(std::clamp<long long>(quarter, 10, 200));
    }
    return 500;
}

void Daemon::run() {
    std::array<struct epoll_event, 256> events;
    while (!draining_ || !conns_.empty()) {
        int n = ::epoll_wait(epoll_fd_.get(), events.data(),
                             static_cast<int>(events.size()),
                             loop_timeout_ms());
        if (n < 0) {
            if (errno == EINTR) continue;
            daemon_fail("epoll_wait");
        }
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            const u32 ev = events[i].events;
            if (listen_fd_.valid() && fd == listen_fd_.get()) {
                accept_ready();
                continue;
            }
            if (fd == drain_fd_.get()) {
                u64 tick = 0;
                while (::read(drain_fd_.get(), &tick, sizeof(tick)) > 0) {
                }
                start_drain();
                continue;
            }
            auto it = conns_.find(fd);
            if (it == conns_.end()) continue;
            Conn& c = *it->second;
            if (ev & (EPOLLERR | EPOLLHUP)) {
                // Peer is gone for good (HUP = both directions). A
                // half-close shows up as EPOLLIN + recv()==0 instead and
                // keeps flowing through the normal path.
                close_conn(fd);
                continue;
            }
            if (ev & EPOLLIN) c.readable = true;
            if (ev & EPOLLOUT) c.writable = true;
            service(c);
        }
        // Retry connections parked on a not-yet-ready stream producer.
        if (!stalled_.empty()) {
            std::vector<int> retry(stalled_.begin(), stalled_.end());
            stalled_.clear();
            for (int fd : retry) {
                auto it = conns_.find(fd);
                if (it != conns_.end()) service(*it->second);
            }
        }
        sweep_idle();
    }
}

#else  // !__linux__

namespace detail {
struct Conn {};
}

Daemon::Daemon(serve::ContentServer& server, DaemonOptions opt)
    : server_(server), opt_(std::move(opt)), stats_(std::make_shared<AtomicStats>()) {
    net_fail(NetErrorCode::daemon_error,
             "recoil_served requires Linux (epoll)");
}
Daemon::~Daemon() = default;
void Daemon::run() {}
void Daemon::begin_drain() noexcept {}
void Daemon::accept_ready() {}
void Daemon::service(detail::Conn&) {}
bool Daemon::flush_out(detail::Conn&) { return false; }
bool Daemon::read_ready(detail::Conn&) { return false; }
bool Daemon::pump_output(detail::Conn&) { return false; }
void Daemon::dispatch(detail::Conn&, std::vector<u8>) {}
void Daemon::update_interest(detail::Conn&) {}
void Daemon::close_conn(int) {}
void Daemon::start_drain() {}
void Daemon::sweep_idle() {}
int Daemon::loop_timeout_ms() const { return 0; }

#endif

}  // namespace recoil::net
