#include "net/daemon.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/named_threads.hpp"
#include "util/thread_annotations.hpp"

#ifdef __linux__
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace recoil::net {

struct Daemon::AtomicStats {
    std::atomic<u64> accepted{0};
    std::atomic<u64> refused{0};
    std::atomic<u64> requests{0};
    std::atomic<u64> streamed{0};
    std::atomic<u64> idle_closed{0};
    std::atomic<u64> protocol_errors{0};
    std::atomic<u64> drains{0};
    std::atomic<u64> connections{0};
    std::atomic<u64> peak_connections{0};
    std::atomic<u64> conn_buffer_peak{0};
    std::atomic<u64> loop_wakeups{0};
    std::atomic<u64> loop_handoffs{0};

    void note_peak_buffer(u64 owned) noexcept {
        u64 cur = conn_buffer_peak.load(std::memory_order_relaxed);
        while (owned > cur &&
               !conn_buffer_peak.compare_exchange_weak(
                   cur, owned, std::memory_order_relaxed)) {
        }
    }
    void note_peak_connections(u64 open) noexcept {
        u64 cur = peak_connections.load(std::memory_order_relaxed);
        while (open > cur &&
               !peak_connections.compare_exchange_weak(
                   cur, open, std::memory_order_relaxed)) {
        }
    }
};

#ifdef __linux__

namespace detail {

/// Per-connection state machine. Owned memory is the outbound buffer (at
/// most one transport-framed response/stream frame), the FrameReader's
/// partial inbound frame, and queued complete request frames — each piece
/// individually bounded, and reads stop while any response is in flight,
/// so the total stays O(max_frame).
struct Conn {
    Fd fd;
    FrameReader reader;
    std::vector<u8> out;
    std::size_t out_off = 0;
    std::deque<std::vector<u8>> pending;
    std::size_t pending_bytes = 0;
    std::optional<serve::ServeStream> stream;
    bool readable = false;
    bool writable = true;  ///< fresh sockets are writable until EAGAIN says not
    bool rd_eof = false;
    bool kill_after_flush = false;  ///< debug_kill_stream_after_bytes armed
    u32 lt_mask = 0;  ///< currently registered epoll interest (LT mode)
    u64 stream_out_bytes = 0;  ///< v2 frame bytes appended on this conn
    std::chrono::steady_clock::time_point last_activity;

    explicit Conn(Fd f, u32 max_frame)
        : fd(std::move(f)),
          reader(max_frame),
          last_activity(std::chrono::steady_clock::now()) {}

    bool out_pending() const noexcept { return out_off < out.size(); }
    bool quiesced() const noexcept {
        return !out_pending() && !stream && pending.empty();
    }
    u64 owned_bytes() const noexcept {
        return static_cast<u64>(out.size() - out_off) +
               reader.buffered_bytes() + pending_bytes;
    }
};

/// Per-loop counters behind a shared_ptr, so the `loop="i"` registry
/// callbacks keep polling valid memory even if the registry outlives the
/// daemon (same contract as the daemon-wide AtomicStats block).
struct LoopStats {
    std::atomic<u64> accepted{0};
    std::atomic<u64> requests{0};
    std::atomic<u64> connections{0};
};

/// One event loop: its own epoll fd, connection table, stall list and wake
/// eventfd. In SO_REUSEPORT mode every loop also owns a listener on the
/// shared port; in hand-off mode only loop 0 does and the rest receive
/// accepted fds through the mailbox.
struct Loop {
    u32 index = 0;
    Fd listen_fd;
    Fd epoll_fd;
    Fd wake_fd;
    bool draining = false;
    std::unordered_map<int, std::unique_ptr<Conn>> conns;
    std::unordered_set<int> stalled;
    std::chrono::steady_clock::time_point last_idle_sweep =
        std::chrono::steady_clock::now();
    util::Mutex handoff_mu;
    /// Accepted fds dealt to this loop by the fallback acceptor; adopted
    /// (or refused) on the next wake.
    std::deque<int> handoff RECOIL_GUARDED_BY(handoff_mu);
    std::shared_ptr<LoopStats> lstats = std::make_shared<LoopStats>();

    ~Loop() {
        // fds still in the mailbox never became Conns; close them here so
        // a drain racing a hand-off cannot leak sockets.
        util::MutexLock lk(handoff_mu);
        for (int fd : handoff) ::close(fd);
    }
};

}  // namespace detail

using detail::Conn;
using detail::Loop;

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;
/// Queued-but-undispatched request frames per connection before the loop
/// stops reading (pipelining bound; reads resume as the queue drains).
constexpr std::size_t kMaxPendingRequests = 64;

std::string errno_str(const char* op) {
    return std::string(op) + ": " + std::strerror(errno);
}

[[noreturn]] void daemon_fail(const char* op) {
    net_fail(NetErrorCode::daemon_error, errno_str(op));
}

struct ListenResult {
    Fd fd;
    u16 port = 0;
};

/// Bind + listen (optionally with SO_REUSEPORT) and resolve the bound
/// port. Returns nullopt on failure — the caller decides whether that
/// means "throw" (primary listener) or "fall back" (peer listeners).
std::optional<ListenResult> try_listen(const std::string& address, u16 port,
                                       int backlog, bool reuseport) {
    struct addrinfo hints {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    struct addrinfo* res = nullptr;
    const std::string port_str = std::to_string(port);
    if (::getaddrinfo(address.c_str(), port_str.c_str(), &hints, &res) != 0)
        return std::nullopt;
    ListenResult out;
    for (struct addrinfo* ai = res; ai; ai = ai->ai_next) {
        Fd fd(::socket(ai->ai_family,
                       ai->ai_socktype | SOCK_NONBLOCK | SOCK_CLOEXEC,
                       ai->ai_protocol));
        if (!fd.valid()) continue;
        int one = 1;
        ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (reuseport &&
            ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one,
                         sizeof(one)) != 0)
            continue;  // kernel without SO_REUSEPORT → caller falls back
        if (::bind(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0) continue;
        if (::listen(fd.get(), backlog) != 0) continue;
        out.fd = std::move(fd);
        break;
    }
    ::freeaddrinfo(res);
    if (!out.fd.valid()) return std::nullopt;
    struct sockaddr_storage ss {};
    socklen_t slen = sizeof(ss);
    if (::getsockname(out.fd.get(), reinterpret_cast<struct sockaddr*>(&ss),
                      &slen) != 0)
        return std::nullopt;
    if (ss.ss_family == AF_INET)
        out.port = ntohs(reinterpret_cast<struct sockaddr_in*>(&ss)->sin_port);
    else if (ss.ss_family == AF_INET6)
        out.port =
            ntohs(reinterpret_cast<struct sockaddr_in6*>(&ss)->sin6_port);
    return out;
}

}  // namespace

Daemon::Daemon(Backend backend, DaemonOptions opt)
    : backend_(std::move(backend)),
      opt_(std::move(opt)),
      stats_(std::make_shared<AtomicStats>()) {
    if (opt_.loops == 0) opt_.loops = 1;
    const u32 nloops = opt_.loops;

    // Primary listener. For a multi-loop daemon, first try with
    // SO_REUSEPORT so the peer loops can share the port; a kernel that
    // refuses the option drops us into hand-off mode.
    bool rp = nloops > 1;
    std::optional<ListenResult> primary;
    if (rp) {
        primary = try_listen(opt_.bind_address, opt_.port, opt_.listen_backlog,
                             true);
        if (!primary) rp = false;
    }
    if (!primary)
        primary = try_listen(opt_.bind_address, opt_.port, opt_.listen_backlog,
                             false);
    if (!primary)
        net_fail(NetErrorCode::daemon_error,
                 "cannot bind/listen on " + opt_.bind_address + ":" +
                     std::to_string(opt_.port));
    port_ = primary->port;

    loops_.reserve(nloops);
    for (u32 i = 0; i < nloops; ++i) {
        auto lp = std::make_unique<Loop>();
        lp->index = i;
        if (i == 0) {
            lp->listen_fd = std::move(primary->fd);
        } else if (rp) {
            // Peer listeners bind the RESOLVED port (opt.port may be 0).
            auto peer = try_listen(opt_.bind_address, port_,
                                   opt_.listen_backlog, true);
            if (peer)
                lp->listen_fd = std::move(peer->fd);
            else
                rp = false;  // keep loop 0's listener, hand off instead
        }
        lp->epoll_fd = Fd(::epoll_create1(EPOLL_CLOEXEC));
        if (!lp->epoll_fd.valid()) daemon_fail("epoll_create1");
        lp->wake_fd = Fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
        if (!lp->wake_fd.valid()) daemon_fail("eventfd");
        struct epoll_event ev {};
        ev.events = EPOLLIN;
        ev.data.fd = lp->wake_fd.get();
        if (::epoll_ctl(lp->epoll_fd.get(), EPOLL_CTL_ADD, lp->wake_fd.get(),
                        &ev) != 0)
            daemon_fail("epoll_ctl(eventfd)");
        loops_.push_back(std::move(lp));
    }
    // A fallback decided mid-way strips the peer listeners already bound so
    // every accept funnels through loop 0.
    if (!rp)
        for (u32 i = 1; i < nloops; ++i) loops_[i]->listen_fd.reset();
    reuseport_ = rp && nloops > 1;
    for (auto& lp : loops_) {
        if (lp->listen_fd.valid()) {
            struct epoll_event ev {};
            ev.events = EPOLLIN;
            ev.data.fd = lp->listen_fd.get();
            if (::epoll_ctl(lp->epoll_fd.get(), EPOLL_CTL_ADD,
                            lp->listen_fd.get(), &ev) != 0)
                daemon_fail("epoll_ctl(listener)");
        }
        wake_fds_.push_back(lp->wake_fd.get());
    }
    init_metrics();
}

void Daemon::init_metrics() {
    // daemon_* metrics poll the shared stats block — callbacks stay valid
    // even if the registry outlives this daemon.
    auto& m = *backend_.metrics;
    auto s = stats_;
    using obs::MetricKind;
    m.register_callback("daemon_accepted_total", MetricKind::counter,
                        [s] { return s->accepted.load(); });
    m.register_callback("daemon_refused_total", MetricKind::counter,
                        [s] { return s->refused.load(); });
    m.register_callback("daemon_requests_total", MetricKind::counter,
                        [s] { return s->requests.load(); });
    m.register_callback("daemon_streamed_total", MetricKind::counter,
                        [s] { return s->streamed.load(); });
    m.register_callback("daemon_idle_closed_total", MetricKind::counter,
                        [s] { return s->idle_closed.load(); });
    m.register_callback("daemon_protocol_errors_total", MetricKind::counter,
                        [s] { return s->protocol_errors.load(); });
    m.register_callback("daemon_drains_total", MetricKind::counter,
                        [s] { return s->drains.load(); });
    m.register_callback("daemon_connections", MetricKind::gauge,
                        [s] { return s->connections.load(); });
    m.register_callback("daemon_peak_connections", MetricKind::gauge,
                        [s] { return s->peak_connections.load(); });
    m.register_callback("daemon_conn_buffer_peak_bytes", MetricKind::gauge,
                        [s] { return s->conn_buffer_peak.load(); });
    // Multi-loop surface. The daemon-wide series exist at every loop
    // count (a single-loop daemon reports loops=1, zero hand-offs) so the
    // frozen-name checks hold for any scrape.
    const u64 nloops = loops_.size();
    const u64 rp = reuseport_ ? 1 : 0;
    m.register_callback("daemon_loops", MetricKind::gauge,
                        [nloops] { return nloops; });
    m.register_callback("daemon_loop_reuseport", MetricKind::gauge,
                        [rp] { return rp; });
    m.register_callback("daemon_loop_wakeups_total", MetricKind::counter,
                        [s] { return s->loop_wakeups.load(); });
    m.register_callback("daemon_loop_handoffs_total", MetricKind::counter,
                        [s] { return s->loop_handoffs.load(); });
    // Per-loop series join the EXISTING families under a `loop="i"` label
    // (the labeled series sum to the unlabeled aggregate).
    for (const auto& lp : loops_) {
        const std::string label =
            "loop=\"" + std::to_string(lp->index) + "\"";
        auto ls = lp->lstats;
        m.register_callback("daemon_accepted_total", label,
                            MetricKind::counter,
                            [ls] { return ls->accepted.load(); });
        m.register_callback("daemon_requests_total", label,
                            MetricKind::counter,
                            [ls] { return ls->requests.load(); });
        m.register_callback("daemon_connections", label, MetricKind::gauge,
                            [ls] { return ls->connections.load(); });
    }
}

void Daemon::begin_drain() noexcept {
    // Async-signal-safe: one atomic store plus one write() per loop
    // eventfd (wake_fds_ is immutable after construction). A full counter
    // only means a wake is already pending.
    drain_requested_.store(true, std::memory_order_release);
    const u64 one = 1;
    for (int fd : wake_fds_) {
        [[maybe_unused]] ssize_t rc = ::write(fd, &one, sizeof(one));
    }
}

void Daemon::start_drain(Loop& lp) {
    if (lp.draining) return;
    lp.draining = true;
    if (!drain_counted_.exchange(true, std::memory_order_relaxed))
        stats_->drains.fetch_add(1, std::memory_order_relaxed);
    if (lp.listen_fd.valid()) {
        ::epoll_ctl(lp.epoll_fd.get(), EPOLL_CTL_DEL, lp.listen_fd.get(),
                    nullptr);
        lp.listen_fd.reset();  // new connects now refused by the kernel
    }
    // Quiesced connections (nothing received, nothing in flight) close
    // now; the rest finish their streams/queued requests and flush.
    std::vector<int> fds;
    fds.reserve(lp.conns.size());
    for (auto& [fd, c] : lp.conns) fds.push_back(fd);
    for (int fd : fds) {
        auto it = lp.conns.find(fd);
        if (it != lp.conns.end()) service(lp, *it->second);
    }
}

void Daemon::adopt_fd(Loop& lp, int fd) {
    if (opt_.max_connections != 0 &&
        stats_->connections.load(std::memory_order_relaxed) >=
            opt_.max_connections) {
        stats_->refused.fetch_add(1, std::memory_order_relaxed);
        ::close(fd);  // deterministic EOF for the peer
        return;
    }
    set_nodelay(fd);
    auto conn = std::make_unique<Conn>(Fd(fd), opt_.max_request_frame);
    struct epoll_event ev {};
    ev.data.fd = fd;
    if (opt_.edge_triggered) {
        ev.events = EPOLLIN | EPOLLOUT | EPOLLET;
    } else {
        ev.events = EPOLLIN;
        conn->lt_mask = EPOLLIN;
    }
    if (::epoll_ctl(lp.epoll_fd.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
        return;  // conn closes via Fd dtor
    }
    lp.conns.emplace(fd, std::move(conn));
    stats_->accepted.fetch_add(1, std::memory_order_relaxed);
    lp.lstats->accepted.fetch_add(1, std::memory_order_relaxed);
    lp.lstats->connections.fetch_add(1, std::memory_order_relaxed);
    const u64 open =
        stats_->connections.fetch_add(1, std::memory_order_relaxed) + 1;
    stats_->note_peak_connections(open);
    if (lp.draining) {
        // Adopted into a loop already draining (hand-off raced the drain):
        // service once, which closes it as soon as it quiesces.
        auto it = lp.conns.find(fd);
        if (it != lp.conns.end()) service(lp, *it->second);
    }
}

void Daemon::accept_ready(Loop& lp) {
    const bool handoff_mode = !reuseport_ && loops_.size() > 1;
    for (;;) {
        int fd = ::accept4(lp.listen_fd.get(), nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR) continue;
            break;  // EAGAIN, or transient (ECONNABORTED, EMFILE, ...)
        }
        if (!handoff_mode) {
            adopt_fd(lp, fd);
            continue;
        }
        // Fallback acceptor: deal round-robin across all loops (self
        // included) through the target's mailbox + wake eventfd.
        const u32 target = next_handoff_.fetch_add(
                               1, std::memory_order_relaxed) %
                           static_cast<u32>(loops_.size());
        if (target == lp.index) {
            adopt_fd(lp, fd);
            continue;
        }
        Loop& peer = *loops_[target];
        {
            util::MutexLock lk(peer.handoff_mu);
            peer.handoff.push_back(fd);
        }
        stats_->loop_handoffs.fetch_add(1, std::memory_order_relaxed);
        const u64 one = 1;
        [[maybe_unused]] ssize_t rc =
            ::write(peer.wake_fd.get(), &one, sizeof(one));
    }
}

void Daemon::close_conn(Loop& lp, int fd) {
    auto it = lp.conns.find(fd);
    if (it == lp.conns.end()) return;
    ::epoll_ctl(lp.epoll_fd.get(), EPOLL_CTL_DEL, fd, nullptr);
    lp.stalled.erase(fd);
    lp.conns.erase(it);
    stats_->connections.fetch_sub(1, std::memory_order_relaxed);
    lp.lstats->connections.fetch_sub(1, std::memory_order_relaxed);
}

bool Daemon::flush_out(Loop& lp, Conn& c) {
    while (c.out_pending() && c.writable) {
        ssize_t n = ::send(c.fd.get(), c.out.data() + c.out_off,
                           c.out.size() - c.out_off, MSG_NOSIGNAL);
        if (n > 0) {
            c.out_off += static_cast<std::size_t>(n);
            c.last_activity = std::chrono::steady_clock::now();
            if (!c.out_pending()) {
                c.out.clear();
                c.out_off = 0;
            }
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            c.writable = false;
            return true;
        }
        if (n < 0 && errno == EINTR) continue;
        close_conn(lp, c.fd.get());  // EPIPE/ECONNRESET/anything else
        return false;
    }
    return true;
}

bool Daemon::read_ready(Loop& lp, Conn& c) {
    u8 buf[kReadChunk];
    const bool willing = !lp.draining && !c.rd_eof && !c.out_pending() &&
                         !c.stream && c.pending.size() < kMaxPendingRequests;
    while (willing && c.readable) {
        ssize_t n = ::recv(c.fd.get(), buf, sizeof(buf), 0);
        if (n > 0) {
            c.last_activity = std::chrono::steady_clock::now();
            try {
                c.reader.feed(std::span<const u8>(buf,
                                                  static_cast<std::size_t>(n)));
            } catch (const NetError&) {
                stats_->protocol_errors.fetch_add(1,
                                                  std::memory_order_relaxed);
                close_conn(lp, c.fd.get());
                return false;
            }
            while (auto frame = c.reader.next()) {
                c.pending_bytes += frame->size();
                c.pending.push_back(std::move(*frame));
            }
            stats_->note_peak_buffer(c.owned_bytes());
            // Stop pulling more off the wire once enough work is queued;
            // the kernel buffers, readable stays set, reads resume later.
            if (c.pending.size() >= kMaxPendingRequests) break;
            continue;
        }
        if (n == 0) {
            c.rd_eof = true;
            return true;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            c.readable = false;
            return true;
        }
        if (errno == EINTR) continue;
        close_conn(lp, c.fd.get());
        return false;
    }
    return true;
}

void Daemon::dispatch(Loop& lp, Conn& c, std::vector<u8> frame) {
    stats_->requests.fetch_add(1, std::memory_order_relaxed);
    lp.lstats->requests.fetch_add(1, std::memory_order_relaxed);
    // Route to the streamed path when this is a well-formed-looking v1
    // request frame whose accept byte carries kAcceptStreamed and whose
    // asset is real store content ('!' introspection names materialize
    // through serve_frame). Anything else — including a request that
    // fails to decode — goes through serve_frame, whose job is exactly
    // to turn defects into typed v1 error frames.
    const bool looks_v1_request =
        frame.size() >= 8 && frame[0] == 'R' && frame[1] == 'C' &&
        frame[2] == 'R' && frame[3] == 'Q' &&
        frame[4] == serve::kProtocolVersion;
    if (looks_v1_request && (frame[6] & serve::kAcceptStreamed) != 0) {
        try {
            serve::ServeRequest req = serve::decode_request(frame);
            if (!req.asset.empty() && req.asset[0] != '!') {
                serve::StreamOptions sopt = opt_.stream;
                sopt.resume_offset = req.resume_offset;
                c.stream.emplace(backend_.stream(req, sopt));
                stats_->streamed.fetch_add(1, std::memory_order_relaxed);
                return;
            }
        } catch (const serve::ProtocolError&) {
            // fall through: serve_frame re-parses and answers with the
            // typed error frame the client expects
        }
    }
    std::vector<u8> resp = backend_.frame(frame);
    append_net_frame(c.out, resp);
    stats_->note_peak_buffer(c.owned_bytes());
}

bool Daemon::pump_output(Loop& lp, Conn& c) {
    // Only generate into an empty outbound buffer: one frame in flight per
    // connection is the memory bound AND the backpressure (a stream's next
    // frame is not even produced until the previous one fully flushed).
    while (!c.out_pending()) {
        if (c.stream) {
            bool would_block = false;
            auto frame = c.stream->try_next_frame(would_block);
            if (frame) {
                c.stream_out_bytes += frame->size();
                if (opt_.debug_kill_stream_after_bytes != 0 &&
                    c.stream_out_bytes >=
                        opt_.debug_kill_stream_after_bytes &&
                    !debug_killed_.exchange(true,
                                            std::memory_order_relaxed)) {
                    // Test hook: flush what we owe, then hard-close the
                    // connection mid-stream (once per daemon).
                    c.kill_after_flush = true;
                }
                append_net_frame(c.out, *frame);
                stats_->note_peak_buffer(c.owned_bytes());
                return true;
            }
            if (would_block) return false;  // producer not ready: park
            c.stream.reset();               // stream complete
            continue;
        }
        if (!c.pending.empty()) {
            std::vector<u8> frame = std::move(c.pending.front());
            c.pending.pop_front();
            c.pending_bytes -= frame.size();
            dispatch(lp, c, std::move(frame));
            continue;
        }
        return true;  // nothing to do
    }
    return true;
}

void Daemon::update_interest(Loop& lp, Conn& c) {
    if (opt_.edge_triggered) return;  // static mask
    u32 want = 0;
    const bool want_read = !lp.draining && !c.rd_eof && !c.out_pending() &&
                           !c.stream &&
                           c.pending.size() < kMaxPendingRequests;
    if (want_read) want |= EPOLLIN;
    if (c.out_pending()) want |= EPOLLOUT;
    if (want == c.lt_mask) return;
    struct epoll_event ev {};
    ev.events = want;
    ev.data.fd = c.fd.get();
    if (::epoll_ctl(lp.epoll_fd.get(), EPOLL_CTL_MOD, c.fd.get(), &ev) == 0)
        c.lt_mask = want;
}

void Daemon::service(Loop& lp, Conn& c) {
    const int fd = c.fd.get();
    for (;;) {
        if (!flush_out(lp, c)) return;  // c is gone
        if (c.kill_after_flush && !c.out_pending()) {
            close_conn(lp, fd);  // armed mid-stream kill (test hook)
            return;
        }
        if (!c.out_pending()) {
            if (!pump_output(lp, c)) {  // stalled on the stream producer
                lp.stalled.insert(fd);
                update_interest(lp, c);
                return;
            }
            if (c.out_pending()) continue;  // new frame: try to flush it
        }
        if (!read_ready(lp, c)) return;  // c is gone
        // Progress is possible only if a queued request can dispatch into
        // the now-empty buffer or fresh bytes arrived; both looped above.
        if (c.out_pending() || c.stream || !c.pending.empty()) {
            if (c.out_pending() && !c.writable) break;  // wait for EPOLLOUT
            if (!c.out_pending() && !c.stream && !c.pending.empty())
                continue;  // dispatch next queued request
            if (c.stream && !c.out_pending()) continue;  // pull next frame
            break;
        }
        // Fully quiesced.
        if (c.rd_eof || lp.draining) {
            close_conn(lp, fd);
            return;
        }
        if (!c.readable) break;  // wait for bytes
        // readable but unwilling can't happen here (quiesced => willing),
        // so looping again makes progress; but guard against surprises.
        break;
    }
    stats_->note_peak_buffer(c.owned_bytes());
    update_interest(lp, c);
}

void Daemon::sweep_idle(Loop& lp) {
    if (opt_.idle_timeout.count() <= 0) return;
    const auto now = std::chrono::steady_clock::now();
    if (now - lp.last_idle_sweep < opt_.idle_timeout / 4) return;
    lp.last_idle_sweep = now;
    std::vector<int> victims;
    for (auto& [fd, c] : lp.conns) {
        if (now - c->last_activity >= opt_.idle_timeout) victims.push_back(fd);
    }
    for (int fd : victims) {
        stats_->idle_closed.fetch_add(1, std::memory_order_relaxed);
        close_conn(lp, fd);
    }
}

int Daemon::loop_timeout_ms(const Loop& lp) const {
    if (!lp.stalled.empty()) return 2;  // stream-producer retry cadence
    if (opt_.idle_timeout.count() > 0) {
        auto quarter = opt_.idle_timeout.count() / 4;
        return static_cast<int>(std::clamp<long long>(quarter, 10, 200));
    }
    return 500;
}

void Daemon::loop_run(Loop& lp) {
    std::array<struct epoll_event, 256> events;
    while (!lp.draining || !lp.conns.empty()) {
        int n = ::epoll_wait(lp.epoll_fd.get(), events.data(),
                             static_cast<int>(events.size()),
                             loop_timeout_ms(lp));
        if (n < 0) {
            if (errno == EINTR) continue;
            daemon_fail("epoll_wait");
        }
        stats_->loop_wakeups.fetch_add(1, std::memory_order_relaxed);
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            const u32 ev = events[i].events;
            if (lp.listen_fd.valid() && fd == lp.listen_fd.get()) {
                accept_ready(lp);
                continue;
            }
            if (fd == lp.wake_fd.get()) {
                u64 tick = 0;
                while (::read(lp.wake_fd.get(), &tick, sizeof(tick)) > 0) {
                }
                // The wake eventfd doubles as the hand-off doorbell and
                // the drain signal: adopt mailbox fds first so a drain
                // closes them gracefully instead of stranding them.
                std::deque<int> batch;
                {
                    util::MutexLock lk(lp.handoff_mu);
                    batch.swap(lp.handoff);
                }
                for (int hfd : batch) adopt_fd(lp, hfd);
                if (drain_requested_.load(std::memory_order_acquire))
                    start_drain(lp);
                continue;
            }
            auto it = lp.conns.find(fd);
            if (it == lp.conns.end()) continue;
            Conn& c = *it->second;
            if (ev & (EPOLLERR | EPOLLHUP)) {
                // Peer is gone for good (HUP = both directions). A
                // half-close shows up as EPOLLIN + recv()==0 instead and
                // keeps flowing through the normal path.
                close_conn(lp, fd);
                continue;
            }
            if (ev & EPOLLIN) c.readable = true;
            if (ev & EPOLLOUT) c.writable = true;
            service(lp, c);
        }
        // Belt-and-braces: a drain flagged between wake writes still gets
        // picked up on the next timeout tick.
        if (!lp.draining &&
            drain_requested_.load(std::memory_order_acquire))
            start_drain(lp);
        // Retry connections parked on a not-yet-ready stream producer.
        if (!lp.stalled.empty()) {
            std::vector<int> retry(lp.stalled.begin(), lp.stalled.end());
            lp.stalled.clear();
            for (int fd : retry) {
                auto it = lp.conns.find(fd);
                if (it != lp.conns.end()) service(lp, *it->second);
            }
        }
        sweep_idle(lp);
    }
}

void Daemon::run() {
    if (loops_.size() <= 1) {
        loop_run(*loops_[0]);
        return;
    }
    // Loops 1..N-1 each get a dedicated named thread (they BLOCK in
    // epoll_wait, so the work-stealing executor is off the table); loop 0
    // runs on the caller's thread, preserving the single-loop contract
    // that run() occupies the thread that owns the daemon.
    util::NamedThreads threads;
    for (std::size_t i = 1; i < loops_.size(); ++i) {
        Loop* lp = loops_[i].get();
        threads.spawn("recoil-net", static_cast<unsigned>(i),
                      [this, lp] { loop_run(*lp); });
    }
    loop_run(*loops_[0]);
    threads.join_all();
}

#else  // !__linux__

namespace detail {
struct Conn {};
struct Loop {};
}  // namespace detail

Daemon::Daemon(Backend backend, DaemonOptions opt)
    : backend_(std::move(backend)),
      opt_(std::move(opt)),
      stats_(std::make_shared<AtomicStats>()) {
    net_fail(NetErrorCode::daemon_error,
             "recoil_served requires Linux (epoll)");
}
void Daemon::run() {}
void Daemon::begin_drain() noexcept {}
void Daemon::loop_run(detail::Loop&) {}
void Daemon::accept_ready(detail::Loop&) {}
void Daemon::adopt_fd(detail::Loop&, int) {}
void Daemon::service(detail::Loop&, detail::Conn&) {}
bool Daemon::flush_out(detail::Loop&, detail::Conn&) { return false; }
bool Daemon::read_ready(detail::Loop&, detail::Conn&) { return false; }
bool Daemon::pump_output(detail::Loop&, detail::Conn&) { return false; }
void Daemon::dispatch(detail::Loop&, detail::Conn&, std::vector<u8>) {}
void Daemon::update_interest(detail::Loop&, detail::Conn&) {}
void Daemon::close_conn(detail::Loop&, int) {}
void Daemon::start_drain(detail::Loop&) {}
void Daemon::sweep_idle(detail::Loop&) {}
int Daemon::loop_timeout_ms(const detail::Loop&) const { return 0; }
void Daemon::init_metrics() {}

#endif

Daemon::Daemon(serve::ContentServer& server, DaemonOptions opt)
    : Daemon(Backend{[&server](std::span<const u8> f) {
                         return server.serve_frame(f);
                     },
                     [&server](const serve::ServeRequest& r,
                               const serve::StreamOptions& o) {
                         return server.serve_stream(r, o);
                     },
                     &server.metrics()},
             std::move(opt)) {}

Daemon::Daemon(serve::ShardedServer& router, DaemonOptions opt)
    : Daemon(Backend{[&router](std::span<const u8> f) {
                         return router.serve_frame(f);
                     },
                     [&router](const serve::ServeRequest& r,
                               const serve::StreamOptions& o) {
                         return router.serve_stream(r, o);
                     },
                     &router.metrics()},
             std::move(opt)) {}

Daemon::~Daemon() = default;

Daemon::Stats Daemon::stats() const noexcept {
    const AtomicStats& s = *stats_;
    Stats out;
    out.accepted = s.accepted.load(std::memory_order_relaxed);
    out.refused = s.refused.load(std::memory_order_relaxed);
    out.requests = s.requests.load(std::memory_order_relaxed);
    out.streamed = s.streamed.load(std::memory_order_relaxed);
    out.idle_closed = s.idle_closed.load(std::memory_order_relaxed);
    out.protocol_errors = s.protocol_errors.load(std::memory_order_relaxed);
    out.drains = s.drains.load(std::memory_order_relaxed);
    out.connections = s.connections.load(std::memory_order_relaxed);
    out.peak_connections = s.peak_connections.load(std::memory_order_relaxed);
    out.conn_buffer_peak_bytes =
        s.conn_buffer_peak.load(std::memory_order_relaxed);
    out.loops = static_cast<u64>(loops_.size());
    out.loop_wakeups = s.loop_wakeups.load(std::memory_order_relaxed);
    out.loop_handoffs = s.loop_handoffs.load(std::memory_order_relaxed);
    return out;
}

}  // namespace recoil::net
