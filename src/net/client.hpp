#pragma once
// Blocking client for the recoil_served wire: one TCP connection speaking
// length-prefixed protocol frames (net/framing.hpp). request() is the v1
// round-trip (frame out, frame back, decode_response). request_streamed()
// negotiates the v2 streamed framing and feeds every arriving stream frame
// through a StreamReassembler — the result is test-enforced bit-exact with
// v1 — while an optional callback sees each raw frame as it lands
// (progress bars, incremental decoders). Transport failures throw typed
// NetError; protocol defects throw the serve layer's ProtocolError —
// same taxonomy in-process and over the wire.

#include <chrono>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "net/error.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "serve/protocol.hpp"

namespace recoil::net {

struct ClientOptions {
    std::string host = "127.0.0.1";
    u16 port = 0;
    std::chrono::milliseconds connect_timeout{5000};
    /// Per-request deadline covering the whole exchange (send + all
    /// response frames). 0 = no deadline.
    std::chrono::milliseconds io_timeout{30000};
    /// Inbound transport-frame cap (v1 responses carry whole wires, so
    /// this must cover the largest asset you expect to materialize).
    u32 max_response_frame = kMaxTransportFrame;
    /// request_streamed() reconnect budget (0 = off): when the transport
    /// fails mid-stream after an ok header, reconnect up to this many
    /// times and resume at the received byte offset
    /// (ServeRequest::resume_offset) — reassembly stays bit-exact because
    /// the server hashes the skipped prefix into the FIN's whole-wire
    /// checksum. Failures before resumable progress still throw.
    u32 stream_resume_attempts = 0;
};

class Client {
public:
    /// Connects eagerly; throws NetError{connect_failed | timeout}.
    explicit Client(ClientOptions opt);

    /// v1 round-trip: one request frame out, one response frame back.
    serve::ServeResult request(const serve::ServeRequest& req);

    /// v2 round-trip: forces kAcceptStreamed onto the request, reassembles
    /// the header/body/FIN sequence into the same ServeResult a v1
    /// exchange would produce. `on_frame` (optional) observes each raw
    /// protocol frame in arrival order, before it is fed to the
    /// reassembler. A server that answers with a single v1 frame instead
    /// (e.g. a typed error for a malformed request) is handled
    /// transparently. With ClientOptions::stream_resume_attempts > 0, a
    /// mid-stream transport failure reconnects and resumes at the received
    /// byte offset instead of throwing.
    using FrameCallback = std::function<void(std::span<const u8>)>;
    serve::ServeResult request_streamed(const serve::ServeRequest& req,
                                        FrameCallback on_frame = {});

    /// Raw exchange: send one protocol frame, read one back. The building
    /// block of request(); exposed for tests that craft hostile frames.
    std::vector<u8> roundtrip_frame(std::span<const u8> frame);

    /// Scrape the server's metrics over this connection ("!metrics" /
    /// "!metrics.json"); returns the exposition text. Throws
    /// ProtocolError if the server rejects introspection.
    std::string fetch_metrics(bool json = false);

    /// The underlying socket, for tests that need to misbehave.
    int fd() const noexcept { return fd_.get(); }

private:
    std::vector<u8> read_frame(Deadline deadline);

    ClientOptions opt_;
    Fd fd_;
    FrameReader reader_;
};

}  // namespace recoil::net
