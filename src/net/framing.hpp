#pragma once
// Transport framing for the serve protocol over a byte stream.
//
// RCRQ/RCRS frames are self-describing but not self-delimiting: decode_*
// in src/serve/protocol.hpp requires the complete frame, and nothing in
// the frame's first bytes announces its total length (v2 body frames in
// particular are header + raw pieces + trailer). TCP gives us a byte
// stream with arbitrary segmentation, so the transport prepends a u32
// little-endian length to every protocol frame:
//
//     [len u32 LE][protocol frame, exactly `len` bytes]
//
// FrameReader reassembles these incrementally. It is deliberately dumb:
// feed() appends whatever bytes arrived (one byte at a time is fine — a
// TCP segment boundary mid-header must never surface as bad_frame), and
// next() pops a complete protocol frame when one is buffered. Length
// bounds are enforced as soon as the 4-byte prefix is complete so a
// malicious peer cannot make us buffer unbounded garbage.

#include <cstring>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "net/error.hpp"
#include "util/ints.hpp"

namespace recoil::net {

/// Bound on a single transport frame. Generous vs the serve layer's
/// kDefaultMaxFrameBytes (1 MiB): v1 materialized responses can exceed the
/// streaming frame budget, so the transport cap only guards against
/// absurdity, not normal big assets.
inline constexpr u32 kMaxTransportFrame = 256u * 1024 * 1024;

/// Append `frame` to `out` with the u32 LE length prefix.
inline void append_net_frame(std::vector<u8>& out, std::span<const u8> frame) {
    if (frame.size() > kMaxTransportFrame)
        net_fail(NetErrorCode::frame_too_large,
                 "outbound frame of " + std::to_string(frame.size()) +
                     " bytes exceeds transport cap");
    const u32 len = static_cast<u32>(frame.size());
    u8 prefix[4] = {static_cast<u8>(len & 0xff), static_cast<u8>((len >> 8) & 0xff),
                    static_cast<u8>((len >> 16) & 0xff),
                    static_cast<u8>((len >> 24) & 0xff)};
    out.insert(out.end(), prefix, prefix + 4);
    out.insert(out.end(), frame.begin(), frame.end());
}

/// Incremental reassembler for length-prefixed frames. Owned memory is
/// bounded by max_frame + one read's worth of slack: feed() rejects a
/// frame the moment its announced length exceeds the cap.
class FrameReader {
public:
    explicit FrameReader(u32 max_frame = kMaxTransportFrame)
        : max_frame_(max_frame) {}

    /// Buffer newly arrived bytes. Any split is legal, including
    /// mid-length-prefix. Throws NetError{frame_too_large} as soon as a
    /// complete prefix announces a frame above the cap.
    void feed(std::span<const u8> bytes) {
        buf_.insert(buf_.end(), bytes.begin(), bytes.end());
        check_bound();
    }

    /// Pop the next complete protocol frame (without the prefix), or
    /// nullopt if more bytes are needed.
    std::optional<std::vector<u8>> next() {
        if (buf_.size() < 4) return std::nullopt;
        const u32 len = peek_len();
        if (buf_.size() < 4u + len) return std::nullopt;
        std::vector<u8> frame(buf_.begin() + 4, buf_.begin() + 4 + len);
        buf_.erase(buf_.begin(), buf_.begin() + 4 + len);
        return frame;
    }

    /// True if no partial frame is buffered (clean stream boundary —
    /// used to distinguish orderly EOF from a truncated frame).
    bool empty() const noexcept { return buf_.empty(); }

    /// Bytes currently buffered (prefix included), for memory accounting.
    std::size_t buffered_bytes() const noexcept { return buf_.size(); }

private:
    u32 peek_len() const {
        return static_cast<u32>(buf_[0]) | (static_cast<u32>(buf_[1]) << 8) |
               (static_cast<u32>(buf_[2]) << 16) | (static_cast<u32>(buf_[3]) << 24);
    }

    void check_bound() const {
        if (buf_.size() < 4) return;
        const u32 len = peek_len();
        if (len > max_frame_)
            net_fail(NetErrorCode::frame_too_large,
                     "inbound frame announces " + std::to_string(len) +
                         " bytes, cap is " + std::to_string(max_frame_));
    }

    u32 max_frame_;
    std::vector<u8> buf_;
};

}  // namespace recoil::net
