#pragma once
// `recoil_served`'s engine: a single-threaded nonblocking epoll event loop
// that speaks the length-prefixed transport framing (net/framing.hpp) over
// TCP and dispatches into a ContentServer.
//
// Shape of the loop:
//   - one listener, accept4(SOCK_NONBLOCK) drained per readiness event;
//     over-limit connections are accepted and immediately closed (counted
//     as refused) so the peer sees a deterministic EOF, not a SYN backlog
//     stall.
//   - per-connection state machine: a FrameReader reassembles request
//     frames from arbitrary partial reads; complete frames queue and are
//     dispatched one at a time (pipelining works, ordering is preserved).
//     v1 requests go through ContentServer::serve_frame() (which also
//     answers "!metrics"); requests with kAcceptStreamed become a
//     ServeStream whose frames are pulled ONLY when the outbound buffer
//     has fully flushed — the socket's writability is the backpressure,
//     so per-connection owned memory stays O(max_frame) regardless of
//     asset size or reader speed. A pull that would block on the producer
//     parks the connection on a short-retry list instead of stalling the
//     loop.
//   - readiness modes: level-triggered (default) keeps the epoll interest
//     mask in sync with what the connection can currently use (EPOLLIN
//     only while we are willing to read — a backlogged connection is
//     unsubscribed so the kernel buffers and the loop never spins);
//     edge-triggered registers EPOLLIN|EPOLLOUT|EPOLLET once and tracks
//     readable/writable flags, clearing them on EAGAIN.
//   - graceful drain: begin_drain() is async-signal-safe (it writes one
//     u64 to an eventfd), so SIGTERM/SIGINT handlers can call it
//     directly. The loop then closes the listener (new connects are
//     refused by the kernel), stops reading new bytes, finishes every
//     in-flight stream and already-received request, flushes, closes, and
//     run() returns — the daemon main exits 0.
//
// Counters/gauges register into the server's MetricsRegistry under
// daemon_* names via callbacks over a shared stats block, so a scrape
// through "!metrics" (over this very socket) sees the daemon alongside
// the serve subsystems — and a registry outliving the daemon polls the
// shared block, never freed memory.

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "net/error.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "serve/server.hpp"

namespace recoil::net {

struct DaemonOptions {
    std::string bind_address = "127.0.0.1";
    /// TCP port; 0 picks an ephemeral port (read it back via port()).
    u16 port = 0;
    int listen_backlog = 256;
    /// Simultaneous connections; one past the limit is accepted and
    /// immediately closed (counted in refused). 0 = unlimited.
    u32 max_connections = 0;
    /// Close connections with no read/write activity for this long.
    /// 0 = never.
    std::chrono::milliseconds idle_timeout{0};
    /// Edge-triggered epoll instead of the default level-triggered.
    bool edge_triggered = false;
    /// Inbound transport-frame cap (request frames are small; this only
    /// bounds what a hostile peer can make us buffer).
    u32 max_request_frame = 1u << 20;
    /// Streamed-response knobs forwarded to serve_stream(); the daemon
    /// pins producer-side memory through window_bytes and its own
    /// outbound buffering through max_frame_bytes.
    serve::StreamOptions stream;
};

namespace detail {
struct Conn;
}

class Daemon {
public:
    /// Binds + listens + sets up epoll and the drain eventfd; registers
    /// daemon_* metrics in server.metrics(). Throws NetError{daemon_error}
    /// if any of that fails. The server must outlive the daemon.
    Daemon(serve::ContentServer& server, DaemonOptions opt = {});
    ~Daemon();
    Daemon(const Daemon&) = delete;
    Daemon& operator=(const Daemon&) = delete;

    /// The port actually bound (resolves opt.port == 0).
    u16 port() const noexcept { return port_; }

    /// Run the event loop until a drain completes. Call from the thread
    /// that owns the daemon; everything else may only call begin_drain().
    void run();

    /// Request a graceful drain. Async-signal-safe (a single write() to an
    /// eventfd) and callable from any thread; idempotent.
    void begin_drain() noexcept;

    /// Point-in-time copy of the daemon's own counters (the same values
    /// the daemon_* registry metrics expose).
    struct Stats {
        u64 accepted = 0;
        u64 refused = 0;
        u64 requests = 0;   ///< frames dispatched (v1 and v2 alike)
        u64 streamed = 0;   ///< of which answered as a v2 stream
        u64 idle_closed = 0;
        u64 protocol_errors = 0;
        u64 drains = 0;
        u64 connections = 0;       ///< currently open
        u64 peak_connections = 0;
        /// High-water mark of one connection's owned bytes (outbound
        /// buffer + reader buffer + queued request frames) — the number
        /// the slow-reader test holds against O(max_frame).
        u64 conn_buffer_peak_bytes = 0;
    };
    Stats stats() const noexcept;

private:
    struct AtomicStats;

    void accept_ready();
    void service(detail::Conn& c);
    bool flush_out(detail::Conn& c);      ///< false: connection died
    bool read_ready(detail::Conn& c);     ///< false: connection died
    bool pump_output(detail::Conn& c);    ///< stream pull / dispatch; false: stalled
    void dispatch(detail::Conn& c, std::vector<u8> frame);
    void update_interest(detail::Conn& c);
    void close_conn(int fd);
    void start_drain();
    void sweep_idle();
    int loop_timeout_ms() const;

    serve::ContentServer& server_;
    DaemonOptions opt_;
    u16 port_ = 0;
    Fd listen_fd_;
    Fd epoll_fd_;
    Fd drain_fd_;  ///< eventfd; begin_drain() writes, the loop reads
    bool draining_ = false;
    std::unordered_map<int, std::unique_ptr<detail::Conn>> conns_;
    /// Connections whose stream pull would have blocked on the producer;
    /// retried every loop iteration under a short epoll timeout.
    std::unordered_set<int> stalled_;
    std::chrono::steady_clock::time_point last_idle_sweep_;
    std::shared_ptr<AtomicStats> stats_;
};

}  // namespace recoil::net
