#pragma once
// `recoil_served`'s engine: nonblocking epoll event loops speaking the
// length-prefixed transport framing (net/framing.hpp) over TCP and
// dispatching into a ContentServer — or, for scale-out, a ShardedServer.
//
// Shape of one loop:
//   - a listener, accept4(SOCK_NONBLOCK) drained per readiness event;
//     over-limit connections are accepted and immediately closed (counted
//     as refused) so the peer sees a deterministic EOF, not a SYN backlog
//     stall.
//   - per-connection state machine: a FrameReader reassembles request
//     frames from arbitrary partial reads; complete frames queue and are
//     dispatched one at a time (pipelining works, ordering is preserved).
//     v1 requests go through serve_frame() (which also answers
//     "!metrics"); requests with kAcceptStreamed become a ServeStream
//     whose frames are pulled ONLY when the outbound buffer has fully
//     flushed — the socket's writability is the backpressure, so
//     per-connection owned memory stays O(max_frame) regardless of asset
//     size or reader speed. A pull that would block on the producer parks
//     the connection on a short-retry list instead of stalling the loop.
//   - readiness modes: level-triggered (default) keeps the epoll interest
//     mask in sync with what the connection can currently use;
//     edge-triggered registers EPOLLIN|EPOLLOUT|EPOLLET once and tracks
//     readable/writable flags, clearing them on EAGAIN.
//
// Multi-loop (DaemonOptions::loops > 1): N loops, each a dedicated OS
// thread (util::NamedThreads — loops BLOCK in epoll_wait, so the
// work-stealing executor, whose tasks must never block, is the wrong
// substrate) with its OWN epoll fd, connection table and stall list —
// independent connections never contend on one loop. The kernel load-
// balances accepts across per-loop SO_REUSEPORT listeners sharing the
// port; when the socket option is unavailable the daemon falls back to
// accept-and-hand-off: loop 0 owns the single listener and deals accepted
// fds round-robin through per-loop mailboxes (counted in
// daemon_loop_handoffs_total).
//
// Graceful drain: begin_drain() is async-signal-safe (one atomic store +
// one write() per loop eventfd), so SIGTERM/SIGINT handlers call it
// directly. Every loop then closes its listener, stops reading new bytes,
// finishes every in-flight stream and already-received request, flushes,
// closes, and run() returns once all loops exit — the daemon main exits 0.
//
// Counters/gauges register into the backend's MetricsRegistry under
// daemon_* names via callbacks over a shared stats block, so a scrape
// through "!metrics" (over this very socket) sees the daemon alongside
// the serve subsystems — and a registry outliving the daemon polls the
// shared block, never freed memory. Per-loop series carry a `loop="i"`
// label next to the unlabeled aggregates.

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/error.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "serve/server.hpp"
#include "serve/shard_router.hpp"

namespace recoil::net {

struct DaemonOptions {
    std::string bind_address = "127.0.0.1";
    /// TCP port; 0 picks an ephemeral port (read it back via port()).
    u16 port = 0;
    int listen_backlog = 256;
    /// Simultaneous connections ACROSS all loops; one past the limit is
    /// accepted and immediately closed (counted in refused). 0 = unlimited.
    u32 max_connections = 0;
    /// Close connections with no read/write activity for this long.
    /// 0 = never.
    std::chrono::milliseconds idle_timeout{0};
    /// Edge-triggered epoll instead of the default level-triggered.
    bool edge_triggered = false;
    /// Inbound transport-frame cap (request frames are small; this only
    /// bounds what a hostile peer can make us buffer).
    u32 max_request_frame = 1u << 20;
    /// Event-loop threads. 1 = the classic single loop on the caller's
    /// thread. N > 1: run() spawns N-1 named threads and drives loop 0
    /// itself; accepts spread via SO_REUSEPORT (or hand-off fallback).
    u32 loops = 1;
    /// Test hook (0 = off): once one connection has flushed at least this
    /// many outbound STREAM frame bytes, hard-close it — once per daemon.
    /// Drives the deterministic mid-stream kill of the resumable-stream
    /// reconnection test; never set it in production.
    u64 debug_kill_stream_after_bytes = 0;
    /// Streamed-response knobs forwarded to serve_stream(); the daemon
    /// pins producer-side memory through window_bytes and its own
    /// outbound buffering through max_frame_bytes.
    serve::StreamOptions stream;
};

namespace detail {
struct Conn;
struct Loop;
}  // namespace detail

class Daemon {
public:
    /// Binds + listens + sets up epoll and the drain eventfds; registers
    /// daemon_* metrics in server.metrics(). Throws NetError{daemon_error}
    /// if any of that fails. The server must outlive the daemon.
    Daemon(serve::ContentServer& server, DaemonOptions opt = {});
    /// Same loop machinery fronting a ShardedServer: every request
    /// dispatches through the consistent-hash ring, "!metrics" answers
    /// from the router's registry (which then carries daemon_* and
    /// shard_* side by side). The router must outlive the daemon.
    Daemon(serve::ShardedServer& router, DaemonOptions opt = {});
    ~Daemon();
    Daemon(const Daemon&) = delete;
    Daemon& operator=(const Daemon&) = delete;

    /// The port actually bound (resolves opt.port == 0). Shared by every
    /// loop listener.
    u16 port() const noexcept { return port_; }
    /// True when per-loop SO_REUSEPORT listeners were granted (multi-loop
    /// only); false means the accept-and-hand-off fallback is active.
    bool reuseport() const noexcept { return reuseport_; }

    /// Run the event loop(s) until a drain completes. Call from the
    /// thread that owns the daemon; everything else may only call
    /// begin_drain(). Spawns loops-1 threads when DaemonOptions::loops>1.
    void run();

    /// Request a graceful drain. Async-signal-safe (an atomic store plus
    /// one write() per loop eventfd) and callable from any thread;
    /// idempotent.
    void begin_drain() noexcept;

    /// Point-in-time copy of the daemon's own counters (the same values
    /// the daemon_* registry metrics expose). Aggregated over all loops.
    struct Stats {
        u64 accepted = 0;
        u64 refused = 0;
        u64 requests = 0;   ///< frames dispatched (v1 and v2 alike)
        u64 streamed = 0;   ///< of which answered as a v2 stream
        u64 idle_closed = 0;
        u64 protocol_errors = 0;
        u64 drains = 0;
        u64 connections = 0;       ///< currently open (all loops)
        u64 peak_connections = 0;
        /// High-water mark of one connection's owned bytes (outbound
        /// buffer + reader buffer + queued request frames) — the number
        /// the slow-reader test holds against O(max_frame).
        u64 conn_buffer_peak_bytes = 0;
        u64 loops = 0;            ///< event-loop thread count
        u64 loop_wakeups = 0;     ///< epoll_wait returns across loops
        u64 loop_handoffs = 0;    ///< fds dealt by the fallback acceptor
    };
    Stats stats() const noexcept;

private:
    struct AtomicStats;
    /// The serving backend, type-erased so one loop implementation fronts
    /// a single ContentServer or a ShardedServer identically.
    struct Backend {
        std::function<std::vector<u8>(std::span<const u8>)> frame;
        std::function<serve::ServeStream(const serve::ServeRequest&,
                                         const serve::StreamOptions&)>
            stream;
        obs::MetricsRegistry* metrics = nullptr;
    };

    Daemon(Backend backend, DaemonOptions opt);

    void loop_run(detail::Loop& lp);
    void accept_ready(detail::Loop& lp);
    /// Register an accepted fd with a loop (local accept or hand-off).
    void adopt_fd(detail::Loop& lp, int fd);
    void service(detail::Loop& lp, detail::Conn& c);
    bool flush_out(detail::Loop& lp, detail::Conn& c);  ///< false: conn died
    bool read_ready(detail::Loop& lp, detail::Conn& c); ///< false: conn died
    /// Stream pull / dispatch; false: stalled on the producer.
    bool pump_output(detail::Loop& lp, detail::Conn& c);
    void dispatch(detail::Loop& lp, detail::Conn& c, std::vector<u8> frame);
    void update_interest(detail::Loop& lp, detail::Conn& c);
    void close_conn(detail::Loop& lp, int fd);
    void start_drain(detail::Loop& lp);
    void sweep_idle(detail::Loop& lp);
    int loop_timeout_ms(const detail::Loop& lp) const;
    void init_metrics();

    Backend backend_;
    DaemonOptions opt_;
    u16 port_ = 0;
    bool reuseport_ = false;
    std::vector<std::unique_ptr<detail::Loop>> loops_;
    /// Loop wake eventfds, fixed at construction so begin_drain() touches
    /// no allocating or locking path.
    std::vector<int> wake_fds_;
    std::atomic<bool> drain_requested_{false};
    std::atomic<bool> drain_counted_{false};
    std::atomic<u32> next_handoff_{0};
    std::atomic<bool> debug_killed_{false};
    std::shared_ptr<AtomicStats> stats_;
};

}  // namespace recoil::net
