#pragma once
// Typed failure taxonomy of the network layer, alongside (not replacing)
// the serve protocol's ProtocolError: NetError is about moving bytes —
// connecting, timing out, a peer going away — while ProtocolError is about
// what the bytes mean. A client call can throw either; `code()` is
// authoritative for dispatch, what() elaborates for humans and logs.

#include <string>

#include "util/error.hpp"
#include "util/ints.hpp"

namespace recoil::net {

enum class NetErrorCode : u8 {
    connect_failed = 1,  ///< could not resolve/reach/handshake the peer
    timeout = 2,         ///< connect/read/write deadline expired
    closed = 3,          ///< peer closed the connection mid-exchange
    io_error = 4,        ///< socket syscall failed (errno in the detail)
    frame_too_large = 5, ///< transport frame exceeds the receiver's bound
    daemon_error = 6,    ///< daemon could not set up (bind/listen/epoll)
};

const char* net_error_name(NetErrorCode code) noexcept;

class NetError : public Error {
public:
    NetError(NetErrorCode code, const std::string& what)
        : Error(what), code_(code) {}
    NetErrorCode code() const noexcept { return code_; }

private:
    NetErrorCode code_;
};

[[noreturn]] inline void net_fail(NetErrorCode code, const std::string& what) {
    throw NetError(code, what);
}

}  // namespace recoil::net
