#pragma once
// Chunked streaming layer: the integration path the paper's conclusion
// sketches ("Recoil can be an easy drop-in replacement for the
// single-threaded interleaved rANS coders" of image/video formats). A stream
// is a sequence of independently-modeled chunks (frames, tiles, file
// blocks); each chunk is a Recoil stream with its own order-0 model and
// detachable split metadata. Decoding exposes two-level parallelism — chunks
// x splits — as one flat work list, and the serving path still scales
// metadata per client without touching any chunk payload.

#include <memory>
#include <span>
#include <vector>

#include "core/metadata.hpp"
#include "format/wire_io.hpp"
#include "rans/static_model.hpp"
#include "simd/dispatch.hpp"
#include "util/thread_pool.hpp"

namespace recoil::stream {

struct ChunkedOptions {
    u32 prob_bits = 11;
    /// Split points planned per chunk at encode time (the maximum
    /// parallelism a client can request within one chunk).
    u32 max_splits_per_chunk = 64;
};

/// One independently decodable chunk. Units share storage on copy and may be
/// a zero-copy view into a mapped container (see parse_view).
struct Chunk {
    std::vector<u32> freq;  ///< quantized pdf (rebuilds the chunk's model)
    RecoilMetadata metadata;
    format::UnitBuffer units;
};

struct ChunkedStream {
    u32 prob_bits = 0;
    std::vector<Chunk> chunks;

    u64 total_symbols() const noexcept {
        u64 n = 0;
        for (const auto& c : chunks) n += c.metadata.num_symbols;
        return n;
    }

    /// Total decode-side parallel work items (splits across all chunks).
    u64 total_splits() const noexcept {
        u64 n = 0;
        for (const auto& c : chunks) n += c.metadata.num_splits();
        return n;
    }

    /// Absolute symbol offset of each chunk's first symbol, with the stream
    /// total appended (chunks.size() + 1 entries). This is the flat symbol
    /// space that byte-range requests over chunked assets address.
    std::vector<u64> chunk_offsets() const;

    /// Serialize with integrity checksum; parse validates everything.
    /// serialize writes the RCS2 layout (per-chunk unit payloads padded to
    /// even offsets); parse accepts RCS1 too. serialize is a materializing
    /// adapter over serialize_into (one producer, two framings).
    std::vector<u8> serialize() const;
    /// Streaming producer: emit the RCS2 wire into `sink` piece by piece —
    /// one small owned section plus one borrowed unit-payload view per
    /// chunk — bit-exact with serialize(). Peak producer memory is
    /// O(largest chunk metadata), not O(wire).
    void serialize_into(format::WireSink& sink) const;
    static ChunkedStream parse(std::span<const u8> bytes);

    /// Parse without copying any chunk's bitstream: unit buffers are views
    /// into `bytes`, kept alive by `keeper` (which must own the storage
    /// behind `bytes`). Misaligned payloads fall back to owned copies.
    /// `checksum_verified` true skips re-hashing bytes the caller already
    /// validated; structural validation always runs.
    static ChunkedStream parse_view(std::span<const u8> bytes,
                                    std::shared_ptr<const void> keeper,
                                    bool checksum_verified = false);

    /// Exact byte count serialize() would produce, without materializing the
    /// O(bitstream) buffer (only the per-chunk metadata is encoded).
    u64 serialized_size() const;

    /// Decoder-adaptive serving across chunks: combine every chunk's
    /// metadata so the whole stream offers ~`target_parallelism` work items
    /// (at least one split per chunk). Metadata-only, O(total splits).
    ChunkedStream combined(u32 target_parallelism) const;
};

class ChunkedEncoder {
public:
    explicit ChunkedEncoder(ChunkedOptions opt = {}) : opt_(opt) {}

    /// Model, encode and append one chunk. Chunks may have any size >= 1.
    void add_chunk(std::span<const u8> data);

    ChunkedStream finish() { return std::move(stream_); }

private:
    ChunkedOptions opt_;
    ChunkedStream stream_;
};

/// Decode the whole stream. Work items are (chunk, split) pairs flattened
/// into one pool job, so a stream of many small chunks still saturates the
/// machine. Backend selects the SIMD kernel for the phase-2/3 ranges.
std::vector<u8> decode_chunked(const ChunkedStream& stream, ThreadPool* pool = nullptr,
                               simd::Backend backend = simd::pick_backend());

/// Decode a single chunk (random access into the stream).
std::vector<u8> decode_chunk(const Chunk& chunk, u32 prob_bits,
                             ThreadPool* pool = nullptr,
                             simd::Backend backend = simd::pick_backend());

}  // namespace recoil::stream
