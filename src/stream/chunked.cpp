#include "stream/chunked.hpp"

#include <cstring>
#include <exception>

#include "core/metadata_codec.hpp"
#include "core/recoil_decoder.hpp"
#include "core/recoil_encoder.hpp"
#include "core/split_planner.hpp"
#include "format/container.hpp"
#include "format/wire_io.hpp"
#include "rans/symbol_stats.hpp"
#include "util/error.hpp"

namespace recoil::stream {

using namespace format::wire;

namespace {

constexpr char kMagicV1[4] = {'R', 'C', 'S', '1'};
constexpr char kMagicV2[4] = {'R', 'C', 'S', '2'};  ///< padded unit payloads

}  // namespace

void ChunkedEncoder::add_chunk(std::span<const u8> data) {
    RECOIL_CHECK(!data.empty(), "add_chunk: empty chunk");
    if (stream_.chunks.empty()) stream_.prob_bits = opt_.prob_bits;
    StaticModel model(histogram(data), opt_.prob_bits);
    auto enc = recoil_encode<Rans32, 32>(data, model, opt_.max_splits_per_chunk);
    Chunk c;
    c.freq.resize(model.alphabet());
    for (u32 s = 0; s < model.alphabet(); ++s) c.freq[s] = model.freq(s);
    c.metadata = std::move(enc.metadata);
    c.units = std::move(enc.bitstream.units);
    stream_.chunks.push_back(std::move(c));
}

std::vector<u64> ChunkedStream::chunk_offsets() const {
    std::vector<u64> off(chunks.size() + 1, 0);
    for (std::size_t i = 0; i < chunks.size(); ++i)
        off[i + 1] = off[i] + chunks[i].metadata.num_symbols;
    return off;
}

std::vector<u8> ChunkedStream::serialize() const {
    format::VectorSink sink;
    serialize_into(sink);
    return std::move(sink.out);
}

void ChunkedStream::serialize_into(format::WireSink& sink) const {
    format::HashingSink hs(sink);
    std::vector<u8> head;
    head.insert(head.end(), kMagicV2, kMagicV2 + 4);
    put_u32(head, prob_bits);
    put_u32(head, static_cast<u32>(chunks.size()));
    hs.write(std::move(head));
    for (const Chunk& c : chunks) {
        std::vector<u8> section;
        put_freq_table(section, c.freq);
        const auto meta = serialize_metadata(c.metadata);
        put_u64(section, meta.size());
        section.insert(section.end(), meta.begin(), meta.end());
        put_u64(section, c.units.size());
        put_unit_pad(section, hs.bytes());
        hs.write(std::move(section));
        hs.write(format::unit_wire_bytes(c.units, 0, c.units.size()));
    }
    std::vector<u8> trailer;
    put_u64(trailer, hs.digest());
    sink.write(std::move(trailer));
}

u64 ChunkedStream::serialized_size() const {
    u64 n = 4 + 4 + 4;  // magic, prob_bits, chunk count
    for (const Chunk& c : chunks) {
        n += 4 + 4 * c.freq.size();
        n += 8 + serialize_metadata(c.metadata).size();
        n += 8;  // unit count
        n += unit_pad_size(n);
        n += c.units.size() * 2;
    }
    return n + 8;  // checksum
}

namespace {

ChunkedStream parse_impl(std::span<const u8> bytes,
                         const std::shared_ptr<const void>& keeper,
                         bool checksum_verified) {
    Cursor c{checked_payload(bytes, "chunked", !checksum_verified), "chunked"};
    const auto magic = c.get_bytes(4);
    const bool padded = std::memcmp(magic.data(), kMagicV2, 4) == 0;
    if (!padded && std::memcmp(magic.data(), kMagicV1, 4) != 0)
        raise("chunked: bad magic");
    ChunkedStream s;
    s.prob_bits = c.get_u32();
    if (s.prob_bits < 1 || s.prob_bits > 16) raise("chunked: bad prob_bits");
    const u32 n = c.get_u32();
    if (n > (u32{1} << 24)) raise("chunked: absurd chunk count");
    s.chunks.resize(n);
    for (Chunk& ch : s.chunks) {
        ch.freq = get_freq_table(c, s.prob_bits);
        const u64 mlen = c.get_u64();
        ch.metadata = deserialize_metadata(c.get_bytes(mlen));
        const u64 ulen = c.get_u64();
        if (padded) skip_unit_pad(c);
        ch.units = get_unit_buffer(c, ulen, keeper);
        if (ch.metadata.num_units != ulen)
            raise("chunked: metadata/bitstream length mismatch");
    }
    return s;
}

}  // namespace

ChunkedStream ChunkedStream::parse(std::span<const u8> bytes) {
    return parse_impl(bytes, nullptr, false);
}

ChunkedStream ChunkedStream::parse_view(std::span<const u8> bytes,
                                        std::shared_ptr<const void> keeper,
                                        bool checksum_verified) {
    return parse_impl(bytes, keeper, checksum_verified);
}

ChunkedStream ChunkedStream::combined(u32 target_parallelism) const {
    ChunkedStream out;
    out.prob_bits = prob_bits;
    out.chunks.reserve(chunks.size());
    const u64 total = total_symbols();
    for (const Chunk& c : chunks) {
        Chunk nc;
        nc.freq = c.freq;
        nc.units = c.units;
        // Budget parallelism proportionally to chunk size.
        const u64 share =
            total == 0 ? 1
                       : std::max<u64>(1, (u64{target_parallelism} *
                                           c.metadata.num_symbols + total / 2) /
                                              total);
        nc.metadata = combine_splits(c.metadata, static_cast<u32>(share));
        out.chunks.push_back(std::move(nc));
    }
    return out;
}

std::vector<u8> decode_chunk(const Chunk& chunk, u32 prob_bits, ThreadPool* pool,
                             simd::Backend backend) {
    StaticModel model(std::span<const u32>(chunk.freq), prob_bits, 0);
    simd::SimdRangeFn<u8> range{backend};
    return recoil_decode<Rans32, 32, u8>(std::span<const u16>(chunk.units),
                                         chunk.metadata, model.tables(), pool,
                                         nullptr, range);
}

std::vector<u8> decode_chunked(const ChunkedStream& stream, ThreadPool* pool,
                               simd::Backend backend) {
    // Flatten (chunk, split) pairs into one work list and prebuild models.
    struct Task {
        u32 chunk;
        u32 split;
    };
    std::vector<Task> tasks;
    std::vector<u64> chunk_base(stream.chunks.size() + 1, 0);
    std::vector<StaticModel> models;
    models.reserve(stream.chunks.size());
    for (u32 ci = 0; ci < stream.chunks.size(); ++ci) {
        const Chunk& c = stream.chunks[ci];
        chunk_base[ci + 1] = chunk_base[ci] + c.metadata.num_symbols;
        models.emplace_back(std::span<const u32>(c.freq), stream.prob_bits, 0);
        for (u32 k = 0; k < c.metadata.num_splits(); ++k) tasks.push_back({ci, k});
    }

    std::vector<u8> out(chunk_base.back());
    simd::SimdRangeFn<u8> range{backend};
    for_each_index(pool, tasks.size(), [&](u64 t) {
        const Task task = tasks[t];
        const Chunk& c = stream.chunks[task.chunk];
        recoil_decode_split<Rans32, 32, u8>(
            std::span<const u16>(c.units), c.metadata,
            models[task.chunk].tables(), task.split,
            out.data() + chunk_base[task.chunk], nullptr, range);
    });
    return out;
}

}  // namespace recoil::stream
