// Registry-level helpers live in textgen.cpp (byte datasets) and
// latents.cpp (latent datasets). This TU anchors the workload library and
// provides the scale used when RECOIL_FULL is requested.

#include <cstdlib>

#include "workload/datasets.hpp"

namespace recoil::workload {

/// Benchmark dataset scale: 1.0 (paper sizes) when RECOIL_FULL=1 is set in
/// the environment, otherwise a laptop-friendly default. Declared here so
/// every bench binary resolves sizes identically.
double bench_scale() {
    const char* full = std::getenv("RECOIL_FULL");
    if (full != nullptr && full[0] == '1') return 1.0;
    const char* s = std::getenv("RECOIL_SCALE");
    if (s != nullptr) {
        const double v = std::atof(s);
        if (v > 0) return v;
    }
    return 0.1;  // rand_* at 1 MB, enwik9 stand-in at 100 MB
}

}  // namespace recoil::workload
