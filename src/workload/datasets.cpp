// Registry-level helpers live in textgen.cpp (byte datasets) and
// latents.cpp (latent datasets). This TU anchors the workload library and
// provides the scale used when RECOIL_FULL is requested.

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "workload/datasets.hpp"
#include "util/xoshiro.hpp"

namespace recoil::workload {

/// Benchmark dataset scale: 1.0 (paper sizes) when RECOIL_FULL=1 is set in
/// the environment, otherwise a laptop-friendly default. Declared here so
/// every bench binary resolves sizes identically.
double bench_scale() {
    const char* full = std::getenv("RECOIL_FULL");
    if (full != nullptr && full[0] == '1') return 1.0;
    const char* s = std::getenv("RECOIL_SCALE");
    if (s != nullptr) {
        const double v = std::atof(s);
        if (v > 0) return v;
    }
    return 0.1;  // rand_* at 1 MB, enwik9 stand-in at 100 MB
}

std::vector<u32> zipf_plan(u32 keys, std::size_t requests, double s,
                           u64 seed) {
    std::vector<double> cdf(keys);
    double mass = 0;
    for (u32 r = 0; r < keys; ++r) {
        mass += 1.0 / std::pow(static_cast<double>(r + 1), s);
        cdf[r] = mass;
    }
    Xoshiro256 rng(seed);
    std::vector<u32> plan(requests);
    for (auto& key : plan) {
        const double u = rng.uniform() * mass;
        key = static_cast<u32>(std::lower_bound(cdf.begin(), cdf.end(), u) -
                               cdf.begin()) +
              1;
    }
    return plan;
}

}  // namespace recoil::workload
