// English-like text generator: an order-2 Markov chain trained on an
// embedded seed corpus. The compression experiments only see order-0
// statistics (static rANS models), so matching letter frequencies — not
// meaning — is what reproduces the paper's text-corpus compression ratios.

#include <array>
#include <cstring>

#include "util/xoshiro.hpp"
#include "workload/datasets.hpp"

namespace recoil::workload {

namespace {

constexpr const char* kCorpus =
    "Entropy coding is essential to data compression, image and video coding, "
    "and the delivery of high quality entertainment content. The range variant "
    "of asymmetric numeral systems is a modern entropy coder featuring superior "
    "speed and compression rate. A single encoded bitstream can be decoded from "
    "any arbitrary position if the intermediate coder states are known, and "
    "after renormalization these states also have a smaller upper bound, which "
    "means that they can be stored efficiently as metadata. The demand for high "
    "resolution images and ultra high definition video is rapidly growing, yet "
    "the communication bandwidth remains limited, so compression always plays a "
    "crucial role in both user experience enhancement and cost saving. When the "
    "input sequence is partitioned into more subsequences the worsening of the "
    "compression rate becomes more dominant, because of the almost linearly "
    "increasing amount of coding overhead. A decoding machine with a modern "
    "graphics processor may be able to decode tens of thousands of subsequences "
    "in parallel, while a budget processor can only decode a few at once. The "
    "server could prepare multiple variations of the content, but this creates "
    "great storage and computational overhead, since once the symbol sequence "
    "is broken into smaller intervals there is no going back; the dependencies "
    "inside the entropy coders are already broken. Instead we record metadata "
    "around the split point, so that splits can be combined simply by removing "
    "extra entries before transmission, and no compression rate is wasted on "
    "parallelism that the decoder cannot use. Experiments show that decoding "
    "throughput is comparable to the conventional approach, scaling massively "
    "on processors of all sizes and greatly outperforming various other coders.";

}  // namespace

std::vector<u8> gen_text(u64 size, u64 seed) {
    const std::size_t clen = std::strlen(kCorpus);
    // Order-2 transition lists: for each character pair, the possible next
    // characters (with multiplicity, preserving the corpus distribution).
    std::vector<std::vector<u8>> next(256 * 256);
    for (std::size_t i = 0; i + 2 < clen; ++i) {
        const u32 ctx = static_cast<u8>(kCorpus[i]) * 256u +
                        static_cast<u8>(kCorpus[i + 1]);
        next[ctx].push_back(static_cast<u8>(kCorpus[i + 2]));
    }

    Xoshiro256 rng(seed ^ 0x1b5c'9e02'77aa'41f3ull);
    std::vector<u8> out(size);
    u8 a = static_cast<u8>(kCorpus[0]);
    u8 b = static_cast<u8>(kCorpus[1]);
    for (u64 i = 0; i < size; ++i) {
        const auto& options = next[a * 256u + b];
        u8 c;
        if (options.empty()) {
            // Dead-end context (corpus tail): restart at a random position.
            const u64 pos = rng.below(clen - 2);
            c = static_cast<u8>(kCorpus[pos]);
        } else {
            c = options[rng.below(options.size())];
        }
        out[i] = c;
        a = b;
        b = c;
    }
    return out;
}

std::vector<ByteDatasetSpec> paper_byte_datasets(double scale) {
    auto sz = [scale](double mb) {
        const u64 s = static_cast<u64>(mb * 1000.0 * 1000.0 * scale);
        return s < 100000 ? u64{100000} : s;  // floor: keep splits meaningful
    };
    std::vector<ByteDatasetSpec> out;
    const double lambdas[] = {10, 50, 100, 200, 500};
    for (double l : lambdas) {
        out.push_back({"rand_" + std::to_string(static_cast<int>(l)), sz(10),
                       [l](u64 s) { return gen_exponential(s, l, 1000 + static_cast<u64>(l)); }});
    }
    out.push_back({"dickens", sz(10.192), [](u64 s) { return gen_text(s, 21); }});
    out.push_back({"webster", sz(41.459), [](u64 s) { return gen_text(s, 22); }});
    out.push_back({"enwik8", sz(100), [](u64 s) { return gen_text(s, 23); }});
    out.push_back({"enwik9", sz(1000), [](u64 s) { return gen_text(s, 24); }});
    return out;
}

}  // namespace recoil::workload
