#include <cmath>

#include "util/xoshiro.hpp"
#include "workload/datasets.hpp"

namespace recoil::workload {

std::vector<u8> gen_exponential(u64 size, double lambda, u64 seed) {
    // floor of an exponential is geometric with q = exp(-rate); rate is
    // calibrated so the lambda values of the paper span its Table 4
    // compression ladder (see DESIGN.md §2).
    const double rate = lambda / 200.0;
    Xoshiro256 rng(seed ^ 0xe4f0'97b1'23c5'66adull);
    std::vector<u8> out(size);
    for (auto& b : out) {
        const double u = 1.0 - rng.uniform();  // (0, 1]
        const double v = std::floor(-std::log(u) / rate);
        b = static_cast<u8>(v > 255.0 ? 255.0 : v);
    }
    return out;
}

}  // namespace recoil::workload
