// Learned-image-codec latent stand-in (paper §5.1 div2k datasets): symbols
// are quantized zero-mean Gaussian residuals whose per-symbol scale comes
// from a spatially smooth lognormal "hyperprior" field. The decoder selects
// a Gaussian CDF table per symbol index — the adaptive-coding path Recoil's
// symbol-index metadata exists to support (§3.1, advantage (3)).

#include <cmath>

#include "util/error.hpp"
#include "util/xoshiro.hpp"
#include "workload/datasets.hpp"

namespace recoil::workload {

namespace {

/// Standard normal sample via Box-Muller.
double gaussian(Xoshiro256& rng) {
    const double u1 = 1.0 - rng.uniform();
    const double u2 = rng.uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

}  // namespace

LatentDataset gen_latents(const std::string& name, u64 num_symbols,
                          double sigma_median, u64 seed, u32 num_models) {
    RECOIL_CHECK(num_models >= 2 && num_models <= 256, "gen_latents: bad bin count");
    LatentDataset ds;
    ds.name = name;
    ds.alphabet = kLatentAlphabet;
    ds.symbols.resize(num_symbols);
    ds.ids.resize(num_symbols);

    // Log-sigma bins spanning a wide dynamic range around the median.
    const double lo = std::log(sigma_median) - 2.5;
    const double hi = std::log(sigma_median) + 2.5;
    ds.bin_sigma.resize(num_models);
    for (u32 m = 0; m < num_models; ++m) {
        const double t = (m + 0.5) / num_models;
        ds.bin_sigma[m] = std::exp(lo + (hi - lo) * t);
    }

    Xoshiro256 rng(seed ^ 0x77ab'10c3'95ef'0d11ull);
    // Smooth log-sigma field: an AR(1) walk emulating the spatial coherence
    // of a hyperprior (nearby latents share scales).
    double field = std::log(sigma_median);
    const double coher = 0.9995;
    for (u64 i = 0; i < num_symbols; ++i) {
        field = coher * field + (1.0 - coher) * std::log(sigma_median) +
                0.02 * gaussian(rng);
        const double clamped = std::min(hi - 1e-9, std::max(lo + 1e-9, field));
        const u32 bin = static_cast<u32>((clamped - lo) / (hi - lo) * num_models);
        ds.ids[i] = static_cast<u8>(bin);
        const double sigma = ds.bin_sigma[bin];
        i32 r = static_cast<i32>(std::lround(gaussian(rng) * sigma));
        if (r < -kLatentOffset) r = -kLatentOffset;
        if (r > kLatentOffset - 1) r = kLatentOffset - 1;
        ds.symbols[i] = static_cast<u16>(r + kLatentOffset);
    }
    return ds;
}

IndexedModelSet LatentDataset::build_models(u32 prob_bits) const {
    std::vector<StaticModel> models;
    models.reserve(bin_sigma.size());
    for (double sigma : bin_sigma) {
        // Discrete Gaussian over residuals, smoothed so every symbol stays
        // encodable (the escape-free simplification of real codecs).
        std::vector<u64> counts(alphabet);
        const double inv2s2 = 1.0 / (2.0 * sigma * sigma);
        for (u32 s = 0; s < alphabet; ++s) {
            const double r = static_cast<double>(static_cast<i32>(s) - kLatentOffset);
            const double p = std::exp(-r * r * inv2s2);
            counts[s] = 1 + static_cast<u64>(p * 1e12);
        }
        models.emplace_back(counts, prob_bits);
    }
    return IndexedModelSet(std::move(models), ids);
}

std::vector<LatentDataset> paper_latent_datasets(double scale) {
    // Sizes follow Table 4 (7.2-7.9 MB of 16-bit symbols); sigmas are tuned
    // so the compression ratios land in the paper's 19-41% band
    // (div2k805 most compressible, div2k803 least).
    auto n = [scale](double mb) {
        const u64 s = static_cast<u64>(mb * 1000.0 * 1000.0 * scale) / 2;
        return s < 50000 ? u64{50000} : s;
    };
    std::vector<LatentDataset> out;
    out.push_back(gen_latents("div2k801", n(7.209), 2.2, 801));
    out.push_back(gen_latents("div2k803", n(7.864), 6.0, 803));
    out.push_back(gen_latents("div2k805", n(7.864), 0.9, 805));
    return out;
}

}  // namespace recoil::workload
