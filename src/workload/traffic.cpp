#include "workload/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/xoshiro.hpp"

namespace recoil::workload {

std::string traffic_asset_name(const TenantSpec& tenant, u32 key) {
    return tenant.name + "/k" + std::to_string(key);
}

namespace {

/// Per-tenant Zipf CDF — the same construction zipf_plan uses, factored so
/// each tenant samples its own skew from the shared arrival stream.
struct ZipfSampler {
    std::vector<double> cdf;
    double mass = 0;

    explicit ZipfSampler(u32 keys, double s) : cdf(keys) {
        for (u32 r = 0; r < keys; ++r) {
            mass += 1.0 / std::pow(static_cast<double>(r + 1), s);
            cdf[r] = mass;
        }
    }
    u32 sample(Xoshiro256& rng) const {
        const double u = rng.uniform() * mass;
        return static_cast<u32>(std::lower_bound(cdf.begin(), cdf.end(), u) -
                                cdf.begin()) +
               1;
    }
};

const PhaseSpec* phase_at(const std::vector<PhaseSpec>& phases, double frac) {
    for (const PhaseSpec& p : phases)
        if (frac >= p.begin_frac && frac < p.end_frac) return &p;
    return nullptr;
}

}  // namespace

std::vector<Arrival> traffic_plan(const TrafficOptions& opt) {
    RECOIL_CHECK(!opt.tenants.empty(), "traffic_plan: no tenants");
    RECOIL_CHECK(opt.offered_rps > 0, "traffic_plan: offered_rps must be > 0");

    std::vector<ZipfSampler> samplers;
    std::vector<double> tenant_cdf;
    samplers.reserve(opt.tenants.size());
    double share = 0;
    for (const TenantSpec& t : opt.tenants) {
        RECOIL_CHECK(t.keys > 0, "traffic_plan: tenant with zero keys");
        RECOIL_CHECK(t.rate_share > 0,
                     "traffic_plan: tenant rate_share must be > 0");
        samplers.emplace_back(t.keys, t.zipf_s);
        share += t.rate_share;
        tenant_cdf.push_back(share);
    }

    Xoshiro256 rng(opt.seed);
    std::vector<Arrival> plan(opt.requests);
    double clock = 0;
    for (std::size_t i = 0; i < opt.requests; ++i) {
        Arrival& a = plan[i];
        // Open-loop arrivals: the offered rate does not slow down because
        // the server is slow — that gap is exactly what the tail-latency
        // harness measures.
        const double step =
            opt.arrivals == ArrivalProcess::deterministic
                ? 1.0 / opt.offered_rps
                : -std::log(1.0 - rng.uniform()) / opt.offered_rps;
        clock += step;
        a.at_seconds = clock;
        a.index = i;

        const u32 tenant = static_cast<u32>(
            std::lower_bound(tenant_cdf.begin(), tenant_cdf.end(),
                             rng.uniform() * share) -
            tenant_cdf.begin());
        a.tenant = tenant;
        a.key = samplers[tenant].sample(rng);

        const double frac = static_cast<double>(i) /
                            static_cast<double>(opt.requests);
        if (const PhaseSpec* p = phase_at(opt.phases, frac);
            p != nullptr && rng.uniform() < p->fraction) {
            if (p->kind == PhaseSpec::Kind::flash_crowd) {
                // The crowd converges on ONE key of one tenant: the
                // single-shard worst case a router must not fall over on.
                a.tenant = std::min(p->tenant,
                                    static_cast<u32>(opt.tenants.size() - 1));
                a.key = 1;
            } else {
                a.scan = true;  // one-hit wonder; consumer derives the range
            }
        }
    }
    return plan;
}

}  // namespace recoil::workload
