#pragma once
// Dataset generators reproducing the paper's evaluation inputs (Table 4).
// Everything is synthetic and seed-deterministic; see DESIGN.md §2 for the
// substitution rationale (enwik/dickens/webster -> Markov text with matched
// order-0 entropy; DIV2K latents -> Gaussian residuals with a hyperprior-like
// scale field).

#include <functional>
#include <string>
#include <vector>

#include "rans/indexed_model.hpp"
#include "util/ints.hpp"

namespace recoil::workload {

/// rand_<lambda>: exponential bytes. min(255, floor(Exp(rate = lambda/200)))
/// reproduces the paper's compressibility ladder (77% .. 9% of raw at n=16).
std::vector<u8> gen_exponential(u64 size, double lambda, u64 seed);

/// English-like text from an order-2 Markov chain (order-0 entropy
/// ~4.5-4.8 bits/byte, matching the paper's text-corpus ratios).
std::vector<u8> gen_text(u64 size, u64 seed);

/// Learned-image-codec latent stand-in: 16-bit symbols (residual + 2048),
/// each modeled by a zero-mean Gaussian whose scale comes from a spatially
/// smooth hyperprior-like field, quantized to `num_models` bins.
struct LatentDataset {
    std::string name;
    std::vector<u16> symbols;  ///< residual + kLatentOffset, in [0, alphabet)
    std::vector<u8> ids;       ///< per-symbol scale-bin model id
    std::vector<double> bin_sigma;
    u32 alphabet = 0;

    /// Gaussian CDF table family for the ids (the decoder's adaptive model).
    IndexedModelSet build_models(u32 prob_bits) const;
};

inline constexpr u32 kLatentAlphabet = 4096;
inline constexpr i32 kLatentOffset = 2048;

LatentDataset gen_latents(const std::string& name, u64 num_symbols,
                          double sigma_median, u64 seed, u32 num_models = 64);

/// A named byte dataset with a lazily-invoked generator.
struct ByteDatasetSpec {
    std::string name;
    u64 size;
    std::function<std::vector<u8>(u64 size)> generate;
};

/// The nine byte datasets of Table 4. `scale` multiplies the paper's sizes
/// (1.0 = 10 MB rand files, 100 MB enwik8, 1 GB enwik9).
std::vector<ByteDatasetSpec> paper_byte_datasets(double scale);

/// The three div2k latent stand-ins of Table 4 (sigma chosen to land in the
/// paper's 19-41% compression band).
std::vector<LatentDataset> paper_latent_datasets(double scale);

/// Benchmark dataset scale: 1.0 (paper sizes) when RECOIL_FULL=1, the value
/// of RECOIL_SCALE if set, else 0.1.
double bench_scale();

/// Seed-deterministic Zipf(s) key plan over [1, keys]: the canonical skewed
/// request trace of the serve cache study, shared by test_session's
/// hit-rate regressions and bench_serve's policy bench so both measure the
/// SAME traffic model (CDF inversion over a seeded xoshiro stream).
std::vector<u32> zipf_plan(u32 keys, std::size_t requests, double s,
                           u64 seed);

/// The scan-pollution half of that trace model, owned here for the same
/// reason: request slot `i` is a one-hit-wonder scan (a unique byte range
/// nobody ever repeats) every `every`-th request...
inline constexpr u32 kScanEvery = 3;
inline bool zipf_scan_slot(std::size_t i, u32 every = kScanEvery) {
    return i % every == every - 1;
}
/// ...and this is the unique, deterministic range start for that slot
/// (stride 131 walks the asset without ever repeating an offset within a
/// plan's length).
inline u64 zipf_scan_lo(std::size_t i, u64 num_symbols, u64 span) {
    return (static_cast<u64>(i) * 131) % (num_symbols - span);
}

}  // namespace recoil::workload
