#pragma once
// Multi-tenant open-loop traffic generation: the "million users" side of
// the serve study. zipf_plan (datasets.hpp) models ONE tenant's skewed key
// popularity; this layer composes N tenants — each with its own keyspace,
// Zipf skew and offered-rate share — under an open-loop arrival process
// (Poisson or deterministic inter-arrivals), with phase modifiers for the
// two regimes that break caches in production: a flash crowd (one key of
// one tenant suddenly absorbs a large fraction of all traffic) and a
// unique scan (a window of one-hit-wonder range requests that an
// admission policy must refuse to cache). Everything is seed-deterministic
// so bench_serve's shard-scaling and tail-latency sections replay the
// identical trace at every shard count.

#include <cstddef>
#include <string>
#include <vector>

#include "util/ints.hpp"

namespace recoil::workload {

/// One tenant: its own asset universe and popularity skew. rate_share
/// weights how often the arrival process picks this tenant.
struct TenantSpec {
    std::string name;
    u32 keys = 64;
    double zipf_s = 1.0;
    double rate_share = 1.0;
};

enum class ArrivalProcess : u8 {
    poisson,        ///< exponential inter-arrivals at the offered rate
    deterministic,  ///< fixed inter-arrival = 1 / offered rate
};

/// A phase modifier over a fraction window [begin_frac, end_frac) of the
/// plan. Requests outside every phase window follow the steady-state
/// tenant/key distribution.
struct PhaseSpec {
    enum class Kind : u8 {
        flash_crowd,  ///< `fraction` of window requests hit tenant's key 1
        unique_scan,  ///< `fraction` of window requests become unique scans
    };
    Kind kind = Kind::flash_crowd;
    double begin_frac = 0.0;
    double end_frac = 0.0;
    u32 tenant = 0;         ///< flash_crowd: the tenant whose hot key spikes
    double fraction = 0.5;  ///< probability the modifier applies in-window
};

struct TrafficOptions {
    std::vector<TenantSpec> tenants;
    std::size_t requests = 10000;
    /// Open-loop offered rate (requests/second) driving arrival stamps.
    double offered_rps = 1000.0;
    ArrivalProcess arrivals = ArrivalProcess::poisson;
    std::vector<PhaseSpec> phases;
    u64 seed = 1;
};

/// One planned request. `key` is 1-based within the tenant's keyspace
/// (key 1 is the tenant's hottest). A `scan` arrival is a one-hit-wonder:
/// the consumer should turn it into a never-repeating range request, using
/// `index` to derive the unique offset (zipf_scan_lo in datasets.hpp).
struct Arrival {
    double at_seconds = 0.0;  ///< offset from trace start (open loop)
    std::size_t index = 0;    ///< position in the plan
    u32 tenant = 0;
    u32 key = 1;
    bool scan = false;
};

/// Stable asset name for a (tenant, key) pair — the corpus naming contract
/// shared by the seeder and the trace consumer.
std::string traffic_asset_name(const TenantSpec& tenant, u32 key);

/// Generate the full open-loop plan: seed-deterministic, sorted by
/// at_seconds (arrival order IS plan order). Throws via RECOIL_CHECK on an
/// empty tenant set, zero keys, or a non-positive offered rate.
std::vector<Arrival> traffic_plan(const TrafficOptions& opt);

}  // namespace recoil::workload
