#pragma once
// GPU execution substrate (stand-in for the paper's CUDA implementation,
// §4.4 variation (4)). The real kernel runs 128 threads per block = four
// 32-lane warps, one interleaved decoder group per warp, with the block
// count chosen by cudaOccupancyMaxActiveBlocksPerMultiprocessor. This
// simulator preserves that execution shape: each warp-task executes one
// split/partition with the 32-lane SIMD group kernel (lockstep warp
// semantics), warps are batched into blocks, and blocks are scheduled over
// the host cores. Occupancy and divergence statistics are modeled so the
// benches can report how the algorithms would load a real device; wall-clock
// throughput is measured, not modeled.

#include <algorithm>

#include "conventional/conventional.hpp"
#include "core/recoil_decoder.hpp"
#include "simd/dispatch.hpp"
#include "util/thread_pool.hpp"

namespace recoil::gpusim {

struct GpuSimConfig {
    u32 threads_per_block = 128;  ///< 4 warps, as in the paper
    u32 sm_count = 68;            ///< modeled device (RTX 2080 Ti: 68 SMs)
    u32 max_blocks_per_sm = 8;    ///< modeled occupancy limit
    u32 host_threads = 0;         ///< 0 = hardware concurrency
    simd::Backend warp_backend = simd::pick_backend();
};

struct LaunchStats {
    u64 warp_tasks = 0;
    u64 blocks = 0;
    u64 resident_warps = 0;   ///< warps the modeled device can keep in flight
    double occupancy = 0.0;   ///< warp_tasks saturating the modeled device
    RecoilDecodeStats decode; ///< sync/cross-boundary overhead work
};

class GpuSimDevice {
public:
    explicit GpuSimDevice(GpuSimConfig cfg = {});

    const GpuSimConfig& config() const noexcept { return cfg_; }
    ThreadPool& pool() noexcept { return pool_; }

    /// Launch the Recoil decode kernel: one warp-task per split. The _into
    /// form writes a caller-provided buffer ("device memory"), measuring
    /// kernel work only, as the paper does.
    template <typename TSym>
    void launch_recoil_into(std::span<const u16> units, const RecoilMetadata& meta,
                            const DecodeTables& t, std::span<TSym> out,
                            LaunchStats* stats = nullptr) {
        if (stats) fill_grid_stats(*stats, meta.num_splits());
        simd::SimdRangeFn<TSym> range{cfg_.warp_backend};
        RecoilDecodeStats ds;
        recoil_decode_into<Rans32, 32, TSym>(units, meta, t, out, &pool_,
                                             stats ? &ds : nullptr, range);
        if (stats) stats->decode = ds;
    }

    template <typename TSym>
    std::vector<TSym> launch_recoil(std::span<const u16> units,
                                    const RecoilMetadata& meta,
                                    const DecodeTables& t,
                                    LaunchStats* stats = nullptr) {
        std::vector<TSym> out(meta.num_symbols);
        launch_recoil_into<TSym>(units, meta, t, std::span<TSym>(out), stats);
        return out;
    }

    /// Launch the conventional decode kernel: one warp-task per partition.
    template <typename TSym>
    void launch_conventional_into(const ConventionalEncoded<Rans32, 32>& enc,
                                  const DecodeTables& t, std::span<TSym> out,
                                  LaunchStats* stats = nullptr) {
        if (stats) fill_grid_stats(*stats, enc.partitions.size());
        simd::SimdRangeFn<TSym> range{cfg_.warp_backend};
        conventional_decode_into<Rans32, 32, TSym>(enc, t, out, &pool_, range);
    }

    template <typename TSym>
    std::vector<TSym> launch_conventional(const ConventionalEncoded<Rans32, 32>& enc,
                                          const DecodeTables& t,
                                          LaunchStats* stats = nullptr) {
        std::vector<TSym> out(enc.num_symbols);
        launch_conventional_into<TSym>(enc, t, std::span<TSym>(out), stats);
        return out;
    }

private:
    void fill_grid_stats(LaunchStats& s, u64 warp_tasks) const;

    GpuSimConfig cfg_;
    ThreadPool pool_;
};

}  // namespace recoil::gpusim
