#include "gpusim/device.hpp"

namespace recoil::gpusim {

GpuSimDevice::GpuSimDevice(GpuSimConfig cfg)
    : cfg_(cfg),
      pool_(cfg.host_threads ? cfg.host_threads
                             : std::max(1u, std::thread::hardware_concurrency())) {}

void GpuSimDevice::fill_grid_stats(LaunchStats& s, u64 warp_tasks) const {
    const u32 warps_per_block = std::max(1u, cfg_.threads_per_block / 32);
    s.warp_tasks = warp_tasks;
    s.blocks = ceil_div<u64>(warp_tasks, warps_per_block);
    s.resident_warps =
        u64{cfg_.sm_count} * cfg_.max_blocks_per_sm * warps_per_block;
    s.occupancy = s.resident_warps == 0
                      ? 0.0
                      : std::min(1.0, static_cast<double>(warp_tasks) /
                                          static_cast<double>(s.resident_warps));
}

}  // namespace recoil::gpusim
